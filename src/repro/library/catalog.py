"""Catalog of standard-cell logic functions.

Each entry describes one cell *function* (NAND2, AOI21, ...) independently
of technology: positional input roles, the Boolean function (used by tests
to cross-check the switch-level simulator) and the stage decomposition
given concrete pin names.

The catalog mirrors the composition of an industrial combinational library:
inverters/buffers, NAND/NOR up to 4 inputs, AND/OR, AOI/OAI complex gates,
AO/OA buffered complex gates, XOR/XNOR, multiplexers and a majority gate —
the same function families that populate the paper's 1712-cell dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.library.synth import CellSpec, Leaf, StageSpec, parallel, series
from repro.logic.expr import Expr, parse_expr


@dataclass(frozen=True)
class FunctionDef:
    """One catalog entry."""

    name: str
    n_inputs: int
    #: Boolean expression over positional pins I0, I1, ... (reference model)
    formula: str
    #: builds the stage list from concrete pin names and the output name
    build: Callable[[Sequence[str], str], Tuple[StageSpec, ...]]
    #: rough complexity class, used to spread functions across technologies
    tier: int = 0
    #: secondary outputs for multi-output cells: (port name, formula) pairs;
    #: the builder must emit stages driving nets with those port names
    extra_outputs: Tuple[Tuple[str, str], ...] = ()

    @property
    def output_names(self) -> Tuple[str, ...]:
        return ("Z",) + tuple(port for port, _formula in self.extra_outputs)

    def spec(self, pins: Sequence[str], output: str) -> CellSpec:
        """Instantiate a :class:`CellSpec` with concrete pin names."""
        if len(pins) != self.n_inputs:
            raise ValueError(
                f"{self.name} needs {self.n_inputs} pins, got {len(pins)}"
            )
        return CellSpec(
            function=self.name,
            inputs=tuple(pins),
            output=output,
            stages=self.build(pins, output),
            extra_outputs=tuple(port for port, _f in self.extra_outputs),
        )

    def _substitute(self, text: str, pins: Sequence[str]) -> Expr:
        # Substitute positional placeholders; highest index first so that
        # I10 is not clobbered by I1.
        for i in reversed(range(self.n_inputs)):
            text = text.replace(f"I{i}", pins[i])
        return parse_expr(text)

    def expr(self, pins: Sequence[str]) -> Expr:
        """Reference Boolean expression (primary output)."""
        return self._substitute(self.formula, pins)

    def exprs(self, pins: Sequence[str]) -> Dict[str, Expr]:
        """Reference expressions for every output, keyed by port name."""
        out = {"Z": self.expr(pins)}
        for port, formula in self.extra_outputs:
            out[port] = self._substitute(formula, pins)
        return out


CATALOG: Dict[str, FunctionDef] = {}


def _register(fdef: FunctionDef) -> FunctionDef:
    if fdef.name in CATALOG:
        raise ValueError(f"duplicate catalog entry {fdef.name}")
    CATALOG[fdef.name] = fdef
    return fdef


def get(name: str) -> FunctionDef:
    """Fetch a catalog entry by function name."""
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(f"unknown cell function {name!r}") from None


def names() -> List[str]:
    """All registered function names, sorted."""
    return sorted(CATALOG)


# ----------------------------------------------------------------------
# Stage builders
# ----------------------------------------------------------------------

def _inv(pins, out):
    return (StageSpec(out=out, pulldown=Leaf(pins[0])),)


def _buf(pins, out):
    mid = "mid"
    return (
        StageSpec(out=mid, pulldown=Leaf(pins[0])),
        StageSpec(out=out, pulldown=Leaf(mid)),
    )


def _nand(pins, out):
    return (StageSpec(out=out, pulldown=series(*map(Leaf, pins))),)


def _nor(pins, out):
    return (StageSpec(out=out, pulldown=parallel(*map(Leaf, pins))),)


def _and(pins, out):
    mid = "mid"
    return (
        StageSpec(out=mid, pulldown=series(*map(Leaf, pins))),
        StageSpec(out=out, pulldown=Leaf(mid)),
    )


def _or(pins, out):
    mid = "mid"
    return (
        StageSpec(out=mid, pulldown=parallel(*map(Leaf, pins))),
        StageSpec(out=out, pulldown=Leaf(mid)),
    )


def _aoi(groups: Sequence[int]):
    """AOI<groups>: NOR of ANDs; e.g. AOI21 -> !((I0&I1) | I2)."""

    def build(pins, out):
        idx = 0
        terms = []
        for g in groups:
            sigs = pins[idx : idx + g]
            idx += g
            terms.append(series(*map(Leaf, sigs)))
        return (StageSpec(out=out, pulldown=parallel(*terms)),)

    return build


def _oai(groups: Sequence[int]):
    """OAI<groups>: NAND of ORs; e.g. OAI21 -> !((I0|I1) & I2)."""

    def build(pins, out):
        idx = 0
        terms = []
        for g in groups:
            sigs = pins[idx : idx + g]
            idx += g
            terms.append(parallel(*map(Leaf, sigs)))
        return (StageSpec(out=out, pulldown=series(*terms)),)

    return build


def _buffered(inner: Callable):
    """Append an output inverter to an inverting gate (AOI -> AO, ...)."""

    def build(pins, out):
        mid = "mid"
        stages = inner(pins, mid)
        return tuple(stages) + (StageSpec(out=out, pulldown=Leaf(mid)),)

    return build


def _xor2(pins, out):
    a, b = pins
    na, nb = "na", "nb"
    return (
        StageSpec(out=na, pulldown=Leaf(a)),
        StageSpec(out=nb, pulldown=Leaf(b)),
        # out = !(a&b | !a&!b) = a xor b
        StageSpec(
            out=out,
            pulldown=parallel(series(Leaf(a), Leaf(b)), series(Leaf(na), Leaf(nb))),
        ),
    )


def _xnor2(pins, out):
    a, b = pins
    na, nb = "na", "nb"
    return (
        StageSpec(out=na, pulldown=Leaf(a)),
        StageSpec(out=nb, pulldown=Leaf(b)),
        # out = !(a&!b | !a&b) = a xnor b
        StageSpec(
            out=out,
            pulldown=parallel(series(Leaf(a), Leaf(nb)), series(Leaf(na), Leaf(b))),
        ),
    )


def _muxi2(pins, out):
    d0, d1, s = pins
    ns = "ns"
    return (
        StageSpec(out=ns, pulldown=Leaf(s)),
        # out = !(d0&!s | d1&s)
        StageSpec(
            out=out,
            pulldown=parallel(series(Leaf(d0), Leaf(ns)), series(Leaf(d1), Leaf(s))),
        ),
    )


def _mux2(pins, out):
    def inner(p, mid_out):
        return _muxi2(p, mid_out)

    return _buffered(inner)(pins, out)


def _maji3(pins, out):
    a, b, c = pins
    return (
        StageSpec(
            out=out,
            pulldown=parallel(
                series(Leaf(a), Leaf(b)),
                series(Leaf(b), Leaf(c)),
                series(Leaf(a), Leaf(c)),
            ),
        ),
    )


def _maj3(pins, out):
    return _buffered(_maji3)(pins, out)


def _b_variant(mode: str):
    """Gates with an inverted first input (the 'B' cells of real libraries):
    an input inverter feeding a NAND ('series') or NOR ('parallel') stage."""

    def build(pins, out):
        inverted = "bn"
        literals = [Leaf(inverted)] + [Leaf(p) for p in pins[1:]]
        network = series(*literals) if mode == "series" else parallel(*literals)
        return (
            StageSpec(out=inverted, pulldown=Leaf(pins[0])),
            StageSpec(out=out, pulldown=network),
        )

    return build


def _b_variant_buffered(mode: str):
    def build(pins, out):
        mid = "mid"
        stages = _b_variant(mode)(pins, mid)
        return tuple(stages) + (StageSpec(out=out, pulldown=Leaf(mid)),)

    return build


def _xor_stage(a: str, na: str, b: str, nb: str, out: str) -> StageSpec:
    """out = a xor b given both polarities of both operands."""
    return StageSpec(
        out=out,
        pulldown=parallel(series(Leaf(a), Leaf(b)), series(Leaf(na), Leaf(nb))),
    )


def _xor3(pins, out):
    a, b, c = pins
    return (
        StageSpec(out="na", pulldown=Leaf(a)),
        StageSpec(out="nb", pulldown=Leaf(b)),
        StageSpec(out="nc", pulldown=Leaf(c)),
        _xor_stage(a, "na", b, "nb", "t"),
        StageSpec(out="nt", pulldown=Leaf("t")),
        _xor_stage("t", "nt", c, "nc", out),
    )


def _xnor3(pins, out):
    a, b, c = pins
    return (
        StageSpec(out="na", pulldown=Leaf(a)),
        StageSpec(out="nb", pulldown=Leaf(b)),
        StageSpec(out="nc", pulldown=Leaf(c)),
        _xor_stage(a, "na", b, "nb", "t"),
        StageSpec(out="nt", pulldown=Leaf("t")),
        # xnor(t, c) = !(t&!c | !t&c)
        StageSpec(
            out=out,
            pulldown=parallel(series(Leaf("t"), Leaf("nc")), series(Leaf("nt"), Leaf(c))),
        ),
    )


def _muxi4(pins, out):
    d0, d1, d2, d3, s0, s1 = pins
    return (
        StageSpec(out="ns0", pulldown=Leaf(s0)),
        StageSpec(out="ns1", pulldown=Leaf(s1)),
        StageSpec(
            out=out,
            pulldown=parallel(
                series(Leaf(d0), Leaf("ns0"), Leaf("ns1")),
                series(Leaf(d1), Leaf(s0), Leaf("ns1")),
                series(Leaf(d2), Leaf("ns0"), Leaf(s1)),
                series(Leaf(d3), Leaf(s0), Leaf(s1)),
            ),
        ),
    )


def _mux4(pins, out):
    return _buffered(_muxi4)(pins, out)


def _cmpx22(pins, out):
    """Two-level compound cell: NAND2 feeding an OAI-style output stage.

    mid = !(I0&I1); out = !(mid & (I2|I3)) = (I0&I1) | (!I2 & !I3).
    """
    a, b, c, d = pins
    mid = "mid"
    return (
        StageSpec(out=mid, pulldown=series(Leaf(a), Leaf(b))),
        StageSpec(out=out, pulldown=series(Leaf(mid), parallel(Leaf(c), Leaf(d)))),
    )


# ----------------------------------------------------------------------
# Catalog entries
# ----------------------------------------------------------------------

_register(FunctionDef("INV", 1, "!I0", _inv, tier=0))
_register(FunctionDef("BUF", 1, "I0", _buf, tier=0))

_register(FunctionDef("NAND2", 2, "!(I0&I1)", _nand, tier=0))
_register(FunctionDef("NAND3", 3, "!(I0&I1&I2)", _nand, tier=0))
_register(FunctionDef("NAND4", 4, "!(I0&I1&I2&I3)", _nand, tier=1))
_register(FunctionDef("NOR2", 2, "!(I0|I1)", _nor, tier=0))
_register(FunctionDef("NOR3", 3, "!(I0|I1|I2)", _nor, tier=0))
_register(FunctionDef("NOR4", 4, "!(I0|I1|I2|I3)", _nor, tier=1))

_register(FunctionDef("AND2", 2, "I0&I1", _and, tier=0))
_register(FunctionDef("AND3", 3, "I0&I1&I2", _and, tier=1))
_register(FunctionDef("AND4", 4, "I0&I1&I2&I3", _and, tier=1))
_register(FunctionDef("OR2", 2, "I0|I1", _or, tier=0))
_register(FunctionDef("OR3", 3, "I0|I1|I2", _or, tier=1))
_register(FunctionDef("OR4", 4, "I0|I1|I2|I3", _or, tier=1))

_register(FunctionDef("AOI21", 3, "!((I0&I1)|I2)", _aoi((2, 1)), tier=1))
_register(FunctionDef("AOI22", 4, "!((I0&I1)|(I2&I3))", _aoi((2, 2)), tier=1))
_register(FunctionDef("AOI211", 4, "!((I0&I1)|I2|I3)", _aoi((2, 1, 1)), tier=1))
_register(FunctionDef("AOI221", 5, "!((I0&I1)|(I2&I3)|I4)", _aoi((2, 2, 1)), tier=2))
_register(FunctionDef("AOI222", 6, "!((I0&I1)|(I2&I3)|(I4&I5))", _aoi((2, 2, 2)), tier=2))
_register(FunctionDef("AOI31", 4, "!((I0&I1&I2)|I3)", _aoi((3, 1)), tier=1))
_register(FunctionDef("AOI32", 5, "!((I0&I1&I2)|(I3&I4))", _aoi((3, 2)), tier=2))
_register(FunctionDef("AOI33", 6, "!((I0&I1&I2)|(I3&I4&I5))", _aoi((3, 3)), tier=2))

_register(FunctionDef("OAI21", 3, "!((I0|I1)&I2)", _oai((2, 1)), tier=1))
_register(FunctionDef("OAI22", 4, "!((I0|I1)&(I2|I3))", _oai((2, 2)), tier=1))
_register(FunctionDef("OAI211", 4, "!((I0|I1)&I2&I3)", _oai((2, 1, 1)), tier=1))
_register(FunctionDef("OAI221", 5, "!((I0|I1)&(I2|I3)&I4)", _oai((2, 2, 1)), tier=2))
_register(FunctionDef("OAI222", 6, "!((I0|I1)&(I2|I3)&(I4|I5))", _oai((2, 2, 2)), tier=2))
_register(FunctionDef("OAI31", 4, "!((I0|I1|I2)&I3)", _oai((3, 1)), tier=1))
_register(FunctionDef("OAI32", 5, "!((I0|I1|I2)&(I3|I4))", _oai((3, 2)), tier=2))
_register(FunctionDef("OAI33", 6, "!((I0|I1|I2)&(I3|I4|I5))", _oai((3, 3)), tier=2))

_register(FunctionDef("AO21", 3, "(I0&I1)|I2", _buffered(_aoi((2, 1))), tier=1))
_register(FunctionDef("AO22", 4, "(I0&I1)|(I2&I3)", _buffered(_aoi((2, 2))), tier=1))
_register(FunctionDef("OA21", 3, "(I0|I1)&I2", _buffered(_oai((2, 1))), tier=1))
_register(FunctionDef("OA22", 4, "(I0|I1)&(I2|I3)", _buffered(_oai((2, 2))), tier=1))
_register(FunctionDef("AO211", 4, "(I0&I1)|I2|I3", _buffered(_aoi((2, 1, 1))), tier=2))
_register(FunctionDef("OA211", 4, "(I0|I1)&I2&I3", _buffered(_oai((2, 1, 1))), tier=2))
_register(FunctionDef("AO221", 5, "(I0&I1)|(I2&I3)|I4", _buffered(_aoi((2, 2, 1))), tier=2))
_register(FunctionDef("OA221", 5, "(I0|I1)&(I2|I3)&I4", _buffered(_oai((2, 2, 1))), tier=2))

_register(FunctionDef("XOR2", 2, "I0^I1", _xor2, tier=1))
_register(FunctionDef("XNOR2", 2, "!(I0^I1)", _xnor2, tier=1))
_register(FunctionDef("MUXI2", 3, "!((I0&!I2)|(I1&I2))", _muxi2, tier=1))
_register(FunctionDef("MUX2", 3, "(I0&!I2)|(I1&I2)", _mux2, tier=2))
_register(FunctionDef("MAJI3", 3, "!((I0&I1)|(I1&I2)|(I0&I2))", _maji3, tier=1))
_register(FunctionDef("MAJ3", 3, "(I0&I1)|(I1&I2)|(I0&I2)", _maj3, tier=2))
_register(
    FunctionDef("CMPX22", 4, "(I0&I1)|(!I2&!I3)", _cmpx22, tier=2)
)

# 'B' variants (inverted first input) and wider compound cells — these
# populate the technology-exclusive sets that drive the paper's
# cross-technology accuracy differences (Section V.B).
_register(FunctionDef("NAND2B", 2, "!(!I0&I1)", _b_variant("series"), tier=1))
_register(FunctionDef("NOR2B", 2, "!(!I0|I1)", _b_variant("parallel"), tier=1))
_register(FunctionDef("NAND3B", 3, "!(!I0&I1&I2)", _b_variant("series"), tier=1))
_register(FunctionDef("NOR3B", 3, "!(!I0|I1|I2)", _b_variant("parallel"), tier=1))
_register(FunctionDef("AND2B", 2, "!I0&I1", _b_variant_buffered("series"), tier=1))
_register(FunctionDef("OR2B", 2, "!I0|I1", _b_variant_buffered("parallel"), tier=1))
_register(FunctionDef("XOR3", 3, "I0^I1^I2", _xor3, tier=2))
_register(FunctionDef("XNOR3", 3, "!(I0^I1^I2)", _xnor3, tier=2))
_register(
    FunctionDef(
        "MUXI4",
        6,
        "!((I0&!I4&!I5)|(I1&I4&!I5)|(I2&!I4&I5)|(I3&I4&I5))",
        _muxi4,
        tier=2,
    )
)
_register(
    FunctionDef(
        "MUX4",
        6,
        "(I0&!I4&!I5)|(I1&I4&!I5)|(I2&!I4&I5)|(I3&I4&I5)",
        _mux4,
        tier=2,
    )
)
def _half_adder(pins, out):
    a, b = pins
    return (
        StageSpec(out="na", pulldown=Leaf(a)),
        StageSpec(out="nb", pulldown=Leaf(b)),
        _xor_stage(a, "na", b, "nb", out),          # sum
        StageSpec(out="nco", pulldown=series(Leaf(a), Leaf(b))),
        StageSpec(out="CO", pulldown=Leaf("nco")),  # carry = A&B
    )


def _full_adder(pins, out):
    a, b, c = pins
    return (
        StageSpec(out="na", pulldown=Leaf(a)),
        StageSpec(out="nb", pulldown=Leaf(b)),
        StageSpec(out="nc", pulldown=Leaf(c)),
        _xor_stage(a, "na", b, "nb", "t"),
        StageSpec(out="nt", pulldown=Leaf("t")),
        _xor_stage("t", "nt", c, "nc", out),        # sum
        StageSpec(
            out="nco",
            pulldown=parallel(
                series(Leaf(a), Leaf(b)),
                series(Leaf(b), Leaf(c)),
                series(Leaf(a), Leaf(c)),
            ),
        ),
        StageSpec(out="CO", pulldown=Leaf("nco")),  # carry = MAJ(A,B,C)
    )


_register(
    FunctionDef(
        "HA1", 2, "I0^I1", _half_adder, tier=2,
        extra_outputs=(("CO", "I0&I1"),),
    )
)
_register(
    FunctionDef(
        "FA1", 3, "I0^I1^I2", _full_adder, tier=2,
        extra_outputs=(("CO", "(I0&I1)|(I1&I2)|(I0&I2)"),),
    )
)

_register(FunctionDef("AO31", 4, "(I0&I1&I2)|I3", _buffered(_aoi((3, 1))), tier=2))
_register(FunctionDef("OA31", 4, "(I0|I1|I2)&I3", _buffered(_oai((3, 1))), tier=2))
_register(FunctionDef("AOI311", 5, "!((I0&I1&I2)|I3|I4)", _aoi((3, 1, 1)), tier=2))
_register(FunctionDef("OAI311", 5, "!((I0|I1|I2)&I3&I4)", _oai((3, 1, 1)), tier=2))
