"""Transistor-level synthesis of static CMOS standard cells.

The paper's method consumes transistor netlists of real standard cells.
Those libraries are proprietary, so this module *builds* cells: a cell is a
chain of complementary CMOS stages, each stage specified by a
series-parallel (SP) expression describing its pull-down network.  The
pull-up network is derived as the SP dual, which is exactly how static CMOS
gates are designed.

The SP expression type defined here is also reused by
:mod:`repro.camatrix.branches` as the branch-equation representation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.spice.netlist import NMOS, PMOS, CellNetlist, Transistor, bulk_rail


# ----------------------------------------------------------------------
# Series-parallel expressions
# ----------------------------------------------------------------------

class SP:
    """A series-parallel network expression whose leaves are signal names."""

    def leaves(self) -> List[str]:
        raise NotImplementedError

    def n_devices(self) -> int:
        return len(self.leaves())

    def dual(self) -> "SP":
        """Swap series and parallel composition (pull-up from pull-down)."""
        raise NotImplementedError

    def render(self, leaf: Callable[[str], str]) -> str:
        """Render the expression with *leaf* applied to every leaf name."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.render(lambda name: name)

    def __and__(self, other: "SP") -> "SP":
        return Series(self, other)

    def __or__(self, other: "SP") -> "SP":
        return Parallel(self, other)


@dataclass(frozen=True)
class Leaf(SP):
    """A single transistor controlled by signal *signal*."""

    signal: str

    def leaves(self) -> List[str]:
        return [self.signal]

    def dual(self) -> "SP":
        return Leaf(self.signal)

    def render(self, leaf: Callable[[str], str]) -> str:
        return leaf(self.signal)


class _Group(SP):
    symbol = "?"

    def __init__(self, *children: SP):
        if len(children) < 2:
            raise ValueError("SP group needs at least two children")
        self.children: Tuple[SP, ...] = tuple(children)

    def leaves(self) -> List[str]:
        out: List[str] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def render(self, leaf: Callable[[str], str]) -> str:
        inner = self.symbol.join(
            child.render(leaf) if isinstance(child, Leaf) else f"({child.render(leaf)})"
            for child in self.children
        )
        return inner

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.children == other.children  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.children))


class Series(_Group):
    """Transistors (or groups) in series: conducts when all conduct."""

    symbol = "&"

    def dual(self) -> "SP":
        return Parallel(*(c.dual() for c in self.children))


class Parallel(_Group):
    """Transistors (or groups) in parallel: conducts when any conducts."""

    symbol = "|"

    def dual(self) -> "SP":
        return Series(*(c.dual() for c in self.children))


def series(*items: SP) -> SP:
    """n-ary series composition (flattening single items)."""
    return items[0] if len(items) == 1 else Series(*items)


def parallel(*items: SP) -> SP:
    """n-ary parallel composition (flattening single items)."""
    return items[0] if len(items) == 1 else Parallel(*items)


def sp_from_signals(signals: Sequence[str], mode: str) -> SP:
    """All signals in series (``mode='series'``) or parallel."""
    leaves = [Leaf(s) for s in signals]
    if len(leaves) == 1:
        return leaves[0]
    return Series(*leaves) if mode == "series" else Parallel(*leaves)


# ----------------------------------------------------------------------
# Stage and cell specifications
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class StageSpec:
    """One complementary CMOS stage.

    The stage drives *out* with the complement of its pull-down condition:
    ``out = NOT(pulldown)``.  The pull-up network defaults to the SP dual of
    *pulldown* but may be given explicitly (drive-strength variants widen
    both networks independently).  Leaves name either cell inputs or the
    outputs of earlier stages.
    """

    out: str
    pulldown: SP
    pullup: Optional[SP] = None

    @property
    def pullup_network(self) -> SP:
        return self.pullup if self.pullup is not None else self.pulldown.dual()

    @property
    def n_transistors(self) -> int:
        return self.pulldown.n_devices() + self.pullup_network.n_devices()


@dataclass(frozen=True)
class CellSpec:
    """A complete cell: ordered stages plus port declarations.

    Multi-output cells (adders, dual-polarity gates) list their secondary
    outputs in *extra_outputs*; each must be driven by some stage.
    """

    function: str
    inputs: Tuple[str, ...]
    output: str
    stages: Tuple[StageSpec, ...]
    extra_outputs: Tuple[str, ...] = ()

    @property
    def outputs(self) -> Tuple[str, ...]:
        return (self.output,) + self.extra_outputs

    @property
    def n_transistors(self) -> int:
        return sum(stage.n_transistors for stage in self.stages)

    def internal_signals(self) -> List[str]:
        return [s.out for s in self.stages if s.out not in self.outputs]


class _NetAllocator:
    """Allocates internal net names in a technology-specific style."""

    def __init__(self, style: str = "net{}", start: int = 0):
        self.style = style
        self.counter = itertools.count(start)

    def new(self) -> str:
        return self.style.format(next(self.counter))


def _emit_network(
    sp: SP,
    top: str,
    bottom: str,
    ttype: str,
    devices: List[Tuple[str, str, str, str]],
    alloc: _NetAllocator,
) -> None:
    """Emit transistors realizing *sp* between nets *top* and *bottom*.

    Each emitted tuple is ``(ttype, drain, gate, source)``; naming/sizing is
    applied later by the builder.  Drain is placed on the *top* (output-side)
    net, source on the *bottom* (rail-side) net, matching standard cell
    layout conventions.
    """
    if isinstance(sp, Leaf):
        devices.append((ttype, top, sp.signal, bottom))
    elif isinstance(sp, Parallel):
        for child in sp.children:
            _emit_network(child, top, bottom, ttype, devices, alloc)
    elif isinstance(sp, Series):
        nets = [top] + [alloc.new() for _ in sp.children[:-1]] + [bottom]
        for child, (a, b) in zip(sp.children, zip(nets, nets[1:])):
            _emit_network(child, a, b, ttype, devices, alloc)
    else:  # pragma: no cover - defensive
        raise TypeError(f"not an SP node: {sp!r}")


@dataclass
class SynthesisOptions:
    """Knobs controlling how a :class:`CellSpec` becomes a netlist."""

    power: str = "VDD"
    ground: str = "VSS"
    net_style: str = "net{}"
    device_name_style: str = "M{}"
    nmos_model: str = "nmos"
    pmos_model: str = "pmos"
    wn: float = 1.0
    wp: float = 2.0
    length: float = 0.1
    #: multiply device width by this per extra series device in its network
    stack_upsize: float = 0.0
    #: permutation seed; devices are emitted in a deterministic shuffled
    #: order so that every library orders "the same" cell differently
    shuffle_seed: Optional[int] = None


def synthesize(spec: CellSpec, name: str, options: Optional[SynthesisOptions] = None) -> CellNetlist:
    """Build a transistor netlist realizing *spec*."""
    opt = options or SynthesisOptions()
    alloc = _NetAllocator(opt.net_style)

    raw: List[Tuple[str, str, str, str]] = []
    for stage in spec.stages:
        _emit_network(stage.pulldown, stage.out, opt.ground, NMOS, raw, alloc)
        _emit_network(stage.pullup_network, stage.out, opt.power, PMOS, raw, alloc)

    order = list(range(len(raw)))
    if opt.shuffle_seed is not None:
        order = _deterministic_shuffle(order, opt.shuffle_seed)

    transistors: List[Transistor] = []
    for new_index, raw_index in enumerate(order):
        ttype, drain, gate, source = raw[raw_index]
        base_w = opt.wn if ttype == NMOS else opt.wp
        w = base_w * (1.0 + opt.stack_upsize)
        transistors.append(
            Transistor(
                name=opt.device_name_style.format(new_index),
                ttype=ttype,
                drain=drain,
                gate=gate,
                source=source,
                bulk=bulk_rail(ttype, opt.power, opt.ground),
                w=w,
                l=opt.length,
                model=opt.nmos_model if ttype == NMOS else opt.pmos_model,
            )
        )

    return CellNetlist(
        name=name,
        inputs=list(spec.inputs),
        outputs=list(spec.outputs),
        transistors=transistors,
        power=opt.power,
        ground=opt.ground,
        function=spec.function,
    )


def _max_stack(sp: SP) -> int:
    if isinstance(sp, Leaf):
        return 1
    if isinstance(sp, Series):
        return sum(_max_stack(c) for c in sp.children)
    return max(_max_stack(c) for c in sp.children)


def _deterministic_shuffle(items: List[int], seed: int) -> List[int]:
    """A reproducible pseudo-shuffle independent of Python's PRNG state."""
    keyed = sorted(items, key=lambda i: ((i * 2654435761 + seed * 40503) & 0xFFFFFFFF))
    return keyed


# ----------------------------------------------------------------------
# Drive-strength transforms (Fig. 6 of the paper)
# ----------------------------------------------------------------------

def widen_spec(spec: CellSpec, drive: int, style: str) -> CellSpec:
    """Return a higher-drive variant of *spec*.

    ``style='merged'`` parallels each *transistor* individually, so series
    stacks share their intermediate nets (the "red net" of Fig. 6 present).
    ``style='split'`` parallels each whole *network*, duplicating the
    intermediate nets (red net absent).  Both have identical logic function
    and ``drive ×`` the device count — the structural equivalence the
    paper's hybrid flow exploits.
    """
    if drive < 1:
        raise ValueError("drive must be >= 1")
    if drive == 1:
        return spec
    if style == "merged":
        def transform(sp: SP) -> SP:
            return _merge_widen(sp, drive)
    elif style == "split":
        def transform(sp: SP) -> SP:
            return parallel(*[sp for _ in range(drive)])
    else:
        raise ValueError(f"unknown drive style {style!r}")
    stages = tuple(
        StageSpec(
            out=s.out,
            pulldown=transform(s.pulldown),
            pullup=transform(s.pullup_network),
        )
        for s in spec.stages
    )
    return CellSpec(
        function=spec.function,
        inputs=spec.inputs,
        output=spec.output,
        stages=stages,
        extra_outputs=spec.extra_outputs,
    )


def _merge_widen(sp: SP, drive: int) -> SP:
    if isinstance(sp, Leaf):
        return parallel(*[Leaf(sp.signal) for _ in range(drive)])
    if isinstance(sp, Series):
        return Series(*(_merge_widen(c, drive) for c in sp.children))
    if isinstance(sp, Parallel):
        return Parallel(*(_merge_widen(c, drive) for c in sp.children))
    raise TypeError(f"not an SP node: {sp!r}")  # pragma: no cover
