"""Standard-cell synthesis, function catalog and synthetic technologies."""

from repro.library.synth import (
    CellSpec,
    Leaf,
    Parallel,
    Series,
    SP,
    StageSpec,
    SynthesisOptions,
    parallel,
    series,
    sp_from_signals,
    synthesize,
    widen_spec,
)
from repro.library.catalog import CATALOG, FunctionDef
from repro.library.catalog import get as get_function
from repro.library.catalog import names as function_names
from repro.library.technology import (
    C28,
    C40,
    SOI28,
    TECHNOLOGIES,
    ElectricalParams,
    Flavor,
    Technology,
)
from repro.library.technology import get as get_technology
from repro.library.liberty import library_to_liberty, save_liberty
from repro.library.builder import (
    Library,
    PRESETS,
    build_cell,
    build_library,
    build_preset,
)

__all__ = [
    "SP",
    "Leaf",
    "Series",
    "Parallel",
    "series",
    "parallel",
    "sp_from_signals",
    "StageSpec",
    "CellSpec",
    "SynthesisOptions",
    "synthesize",
    "widen_spec",
    "CATALOG",
    "FunctionDef",
    "get_function",
    "function_names",
    "Technology",
    "ElectricalParams",
    "Flavor",
    "SOI28",
    "C40",
    "C28",
    "TECHNOLOGIES",
    "get_technology",
    "Library",
    "build_cell",
    "build_library",
    "build_preset",
    "PRESETS",
    "library_to_liberty",
    "save_liberty",
]
