"""Library construction: catalog x technology -> cell netlists."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.library import catalog
from repro.library.synth import SynthesisOptions, synthesize, widen_spec
from repro.library.technology import Flavor, Technology
from repro.library.technology import get as get_technology
from repro.spice.netlist import CellNetlist


@dataclass
class Library:
    """A built standard-cell library."""

    technology: Technology
    cells: List[CellNetlist] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.technology.name

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    def cell(self, name: str) -> CellNetlist:
        for c in self.cells:
            if c.name == name:
                return c
        raise KeyError(f"no cell {name!r} in library {self.name}")

    def by_group(self) -> Dict[Tuple[int, int], List[CellNetlist]]:
        """Cells grouped by (#inputs, #transistors) — the paper's pooling."""
        groups: Dict[Tuple[int, int], List[CellNetlist]] = {}
        for c in self.cells:
            groups.setdefault(c.group_key, []).append(c)
        return groups

    def functions(self) -> List[str]:
        return sorted({c.function for c in self.cells})


def build_cell(
    tech: Technology,
    function: str,
    drive: int = 1,
    flavor: Optional[Flavor] = None,
) -> CellNetlist:
    """Synthesize one cell of *tech*.

    The transistor order inside the netlist is deterministically scrambled
    per (technology, cell) so that "the same" cell never shares transistor
    labels or ordering across libraries — the exact nuisance the paper's
    renaming step (Section III.B) exists to remove.
    """
    flavor = flavor or tech.flavors[0]
    fdef = catalog.get(function)
    pins = tech.pin_names(fdef.n_inputs)
    name = tech.cell_name(function, drive, flavor)
    spec = fdef.spec(pins, output="Z")
    spec = widen_spec(spec, drive, tech.drive_style)
    options = SynthesisOptions(
        power=tech.dialect.power,
        ground=tech.dialect.ground,
        net_style=tech.net_style,
        device_name_style=tech.device_name_style,
        nmos_model=tech.dialect.models["nmos"],
        pmos_model=tech.dialect.models["pmos"],
        wn=tech.wn * flavor.width_scale * drive_width_scale(drive),
        wp=tech.wp * flavor.width_scale * drive_width_scale(drive),
        length=tech.length,
        shuffle_seed=tech.shuffle_seed(name),
    )
    cell = synthesize(spec, name, options)
    cell.technology = tech.name
    return cell


def drive_width_scale(drive: int) -> float:
    """Mild per-finger width increase with drive (real libraries do this
    instead of relying purely on parallel fingers)."""
    return 1.0 + 0.05 * (drive - 1)


def build_library(
    tech_or_name,
    functions: Optional[Sequence[str]] = None,
    drives: Optional[Sequence[int]] = None,
    flavors: Optional[Sequence[Flavor]] = None,
    max_inputs: Optional[int] = None,
) -> Library:
    """Build the full library of one technology.

    Any of *functions*, *drives*, *flavors* can be overridden to produce a
    smaller library (used by tests and the scaled-down experiment presets).
    """
    tech = tech_or_name if isinstance(tech_or_name, Technology) else get_technology(tech_or_name)
    functions = list(functions if functions is not None else tech.functions)
    drives = list(drives if drives is not None else tech.drives)
    flavors = list(flavors if flavors is not None else tech.flavors)

    cells: List[CellNetlist] = []
    for function in functions:
        fdef = catalog.get(function)
        if max_inputs is not None and fdef.n_inputs > max_inputs:
            continue
        for drive in drives:
            for flavor in flavors:
                cells.append(build_cell(tech, function, drive, flavor))
    return Library(technology=tech, cells=cells)


#: Preset library scales.  'tiny' keeps unit tests fast; 'bench' is the
#: benchmark-harness default (regenerates every table in minutes);
#: 'small' adds the 4-input complex gates; 'default'/'full' build the
#: complete catalog at the paper-like composition.
PRESETS: Dict[str, Dict[str, object]] = {
    "tiny": {"drives": (1,), "flavors": (Flavor("STD"),), "max_inputs": 3},
    "bench": {"drives": (1, 2), "max_inputs": 3},
    "small": {"drives": (1, 2), "max_inputs": 4},
    "default": {},
    "full": {},
}


def build_preset(tech_name: str, preset: str = "default") -> Library:
    """Build a library at a named scale preset."""
    try:
        kwargs = dict(PRESETS[preset])
    except KeyError:
        raise KeyError(f"unknown preset {preset!r}; known: {sorted(PRESETS)}") from None
    return build_library(tech_name, **kwargs)  # type: ignore[arg-type]
