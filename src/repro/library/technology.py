"""Synthetic process technologies.

The paper's dataset spans three STMicroelectronics technologies (C40, 28SOI,
C28) whose libraries are proprietary.  This module defines three *synthetic*
technologies that reproduce every property the methodology depends on:

* different transistor sizing (C40 is a 40 nm-class process with wider
  devices; the two 28 nm-class processes are smaller),
* different SPICE dialects, device prefixes, pin and internal-net naming,
* different deterministic transistor ordering inside the netlist,
* different drive-strength construction style (merged vs split parallel
  stacks — the two configurations of Fig. 6),
* a different subset of the function catalog (C28 carries functions that do
  not exist in 28SOI, which the paper identifies as the cause of its lower
  cross-technology accuracy).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.spice.dialects import Dialect, register


@dataclass(frozen=True)
class ElectricalParams:
    """Parameters consumed by the switch-level solver."""

    #: sheet-like on-resistance coefficient: Ron = rsq * L / W   [ohm]
    rsq_nmos: float = 10_000.0
    rsq_pmos: float = 22_000.0
    #: resistance of an injected short defect [ohm]; hard shorts are well
    #: below device on-resistance ("resistance values are often identical
    #: for all technologies", Section II.A), which keeps detection labels
    #: stable across sizing flavors of one technology
    short_resistance: float = 300.0
    #: logic thresholds on the 0..1 voltage scale
    vil: float = 0.35
    vih: float = 0.65


@dataclass(frozen=True)
class Flavor:
    """A threshold-voltage flavor: same structure, different sizing."""

    name: str
    width_scale: float = 1.0


@dataclass(frozen=True)
class Technology:
    """One synthetic process + library convention bundle."""

    name: str
    dialect: Dialect
    #: base device widths and channel length in micrometres
    wn: float
    wp: float
    length: float
    electrical: ElectricalParams
    #: returns the i-th input pin name (i starting at 0)
    pin_style: Callable[[int], str]
    net_style: str
    device_name_style: str
    cell_prefix: str
    drive_style: str  # 'merged' or 'split' (Fig. 6)
    functions: Tuple[str, ...]
    drives: Tuple[int, ...] = (1, 2)
    flavors: Tuple[Flavor, ...] = (Flavor("STD"),)

    def pin_names(self, count: int) -> List[str]:
        return [self.pin_style(i) for i in range(count)]

    def cell_name(self, function: str, drive: int, flavor: Flavor) -> str:
        suffix = "" if flavor.name == "STD" else f"_{flavor.name}"
        return f"{self.cell_prefix}_{function}X{drive}{suffix}"

    def shuffle_seed(self, cell_name: str) -> int:
        """Deterministic per-cell transistor-order scramble seed."""
        return zlib.crc32(f"{self.name}:{cell_name}".encode())


def _alpha_pins(i: int) -> str:
    return "ABCDEFGH"[i]


def _a_number_pins(i: int) -> str:
    return f"A{i + 1}"


def _in_number_pins(i: int) -> str:
    return f"IN{i + 1}"


# ----------------------------------------------------------------------
# Function partitioning across technologies
# ----------------------------------------------------------------------
#
# The composition drives the paper's cross-technology findings:
#
# * 28SOI (the training technology) carries the full complex-gate family.
# * C40 shares a core with 28SOI but adds many structurally *new yet
#   benign* variants ('B' gates, buffered wide gates).  Its hybrid-flow
#   structural match rate lands near the paper's ~50 %, while ML still
#   predicts ~80 % of its cells well (the V.C "room for improvement" gap).
# * C28 carries genuinely alien exclusives (majority, compound, 3-3 AOI),
#   reproducing the paper's finding that C28 transfers worse (68 %) than
#   C40 (80 %).

#: shared across all three technologies
COMMON = (
    "INV", "BUF",
    "NAND2", "NAND3", "NAND4", "NOR2", "NOR3", "NOR4",
    "AND2", "AND3", "OR2", "OR3",
    "AOI21", "AOI22", "OAI21", "OAI22",
    "AO21", "OA21",
    "XOR2", "XNOR2", "MUXI2",
)

#: complex gates only the training technology carries
SOI28_EXTRA = (
    "AND4", "OR4",
    "AOI211", "AOI221", "AOI222", "AOI31", "AOI32",
    "OAI211", "OAI221", "OAI222", "OAI31", "OAI32",
    "AO22", "OA22", "AO211", "OA211", "MUX2",
)

#: structurally new but mostly ML-tractable variants exclusive to C40
C40_EXCLUSIVE = (
    "NAND2B", "NOR2B", "NAND3B", "NOR3B",
    "XOR3", "MUXI4", "MUX4",
    "AO31", "OA31", "AOI311", "OAI311",
)

#: genuinely novel functions exclusive to C28 — absent from the 28SOI
#: training library, reproducing the paper's V.B finding that cells with
#: "new logic functions that do not appear in the training dataset"
#: predict poorly when transferring 28SOI -> C28
C28_EXCLUSIVE = (
    "AOI33", "OAI33", "CMPX22", "MAJ3", "MAJI3", "AO221", "OA221",
    "AND2B", "OR2B", "XNOR3",
)

SOI28_FUNCTIONS = COMMON + SOI28_EXTRA
C40_FUNCTIONS = COMMON + C40_EXCLUSIVE
C28_FUNCTIONS = COMMON + ("AOI211", "OAI211", "AO22", "OA22") + C28_EXCLUSIVE


SOI28 = Technology(
    name="soi28",
    dialect=register(
        Dialect(
            name="soi28",
            models={"nmos": "nsvt28", "pmos": "psvt28"},
            power="VDD",
            ground="VSS",
            device_prefix="M",
        )
    ),
    wn=0.30,
    wp=0.55,
    length=0.030,
    electrical=ElectricalParams(rsq_nmos=11_000.0, rsq_pmos=21_000.0),
    pin_style=_alpha_pins,
    net_style="net{}",
    device_name_style="M{}",
    cell_prefix="S28",
    drive_style="merged",
    functions=SOI28_FUNCTIONS,
    drives=(1, 2, 4),
    flavors=(Flavor("STD"), Flavor("LVT", 1.15), Flavor("HVT", 0.85)),
)

C40 = Technology(
    name="c40",
    dialect=register(
        Dialect(
            name="c40",
            models={"nmos": "nch", "pmos": "pch"},
            power="VDD",
            ground="GND",
            device_prefix="MM",
            lowercase_params=True,
        )
    ),
    wn=0.60,
    wp=1.10,
    length=0.040,
    electrical=ElectricalParams(rsq_nmos=9_000.0, rsq_pmos=19_000.0),
    pin_style=_a_number_pins,
    net_style="n{}",
    device_name_style="MM{}",
    cell_prefix="C40",
    drive_style="split",
    functions=C40_FUNCTIONS,
    drives=(1, 2, 4),
    flavors=(Flavor("STD"), Flavor("HS", 1.25)),
)

C28 = Technology(
    name="c28",
    dialect=register(
        Dialect(
            name="c28",
            models={"nmos": "nfet", "pmos": "pfet"},
            power="VCC",
            ground="VSS",
            device_prefix="XM",
        )
    ),
    wn=0.28,
    wp=0.50,
    length=0.028,
    electrical=ElectricalParams(rsq_nmos=12_000.0, rsq_pmos=23_000.0),
    pin_style=_in_number_pins,
    net_style="int_{}",
    device_name_style="XM{}",
    cell_prefix="C28",
    drive_style="split",
    functions=C28_FUNCTIONS,
    drives=(1, 2),
    flavors=(Flavor("STD"), Flavor("LL", 0.9), Flavor("HP", 1.1)),
)

TECHNOLOGIES: Dict[str, Technology] = {t.name: t for t in (SOI28, C40, C28)}


def get(name: str) -> Technology:
    """Fetch a technology by name ('soi28', 'c40', 'c28')."""
    try:
        return TECHNOLOGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown technology {name!r}; known: {sorted(TECHNOLOGIES)}"
        ) from None
