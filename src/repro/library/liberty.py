"""Liberty (.lib) view export.

Standard-cell libraries ship a Liberty timing/function view alongside the
SPICE netlists; downstream tools (synthesis, ATPG) read cell functions
from it.  This module emits a functional Liberty skeleton for a built
library: cell/pin/direction/function attributes (no timing tables — the
switch-level substrate has no timing model), with the Boolean function
strings derived from the same catalog formulas the netlists were
synthesized from, so the two views are consistent by construction.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.library.builder import Library
from repro.library.catalog import get as get_function
from repro.logic.expr import And, Const, Expr, Not, Or, Var, Xor
from repro.spice.netlist import CellNetlist


def _liberty_expr(expr: Expr) -> str:
    """Render a Boolean expression in Liberty syntax (&,|,^,!)."""
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Const):
        return str(int(expr.value))
    if isinstance(expr, Not):
        return f"!{_liberty_expr_wrapped(expr.operand)}"
    if isinstance(expr, (And, Or, Xor)):
        symbol = {"&": "&", "|": "|", "^": "^"}[expr.symbol]
        return symbol.join(_liberty_expr_wrapped(op) for op in expr.operands)
    raise TypeError(f"cannot render {expr!r}")


def _liberty_expr_wrapped(expr: Expr) -> str:
    if isinstance(expr, (Var, Const, Not)):
        return _liberty_expr(expr)
    return f"({_liberty_expr(expr)})"


def cell_to_liberty(cell: CellNetlist, indent: str = "  ") -> str:
    """One Liberty ``cell`` group for a catalog-built cell."""
    fdef = get_function(cell.function) if cell.function else None
    lines: List[str] = [f'{indent}cell ("{cell.name}") {{']
    lines.append(f"{indent}  area : {cell.n_transistors * 0.25:.2f};")
    for pin in cell.inputs:
        lines.append(f'{indent}  pin ("{pin}") {{')
        lines.append(f"{indent}    direction : input;")
        lines.append(f"{indent}  }}")
    exprs = fdef.exprs(cell.inputs) if fdef is not None else {}
    for port in cell.outputs:
        lines.append(f'{indent}  pin ("{port}") {{')
        lines.append(f"{indent}    direction : output;")
        if port in exprs:
            lines.append(
                f'{indent}    function : "{_liberty_expr(exprs[port])}";'
            )
        lines.append(f"{indent}  }}")
    lines.append(f"{indent}}}")
    return "\n".join(lines)


def library_to_liberty(library: Library, name: str = "") -> str:
    """A functional Liberty file for a whole built library."""
    lib_name = name or f"{library.name}_func"
    lines: List[str] = [f'library ("{lib_name}") {{']
    lines.append('  delay_model : "table_lookup";')
    lines.append('  time_unit : "1ns";')
    lines.append('  voltage_unit : "1V";')
    for cell in library:
        lines.append(cell_to_liberty(cell))
    lines.append("}")
    return "\n".join(lines) + "\n"


def save_liberty(library: Library, path: Union[str, Path], name: str = "") -> Path:
    """Write the Liberty view to *path*."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(library_to_liberty(library, name=name))
    return path
