"""Cell-aware model data structures.

A :class:`CAModel` is the artifact the whole flow exists to produce: for
one cell, the detection table of every potential cell-internal defect over
a stimulus set, plus the golden responses.  This mirrors what commercial
"CA fault model" files contain (detection conditions per defect, Section I
of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.defects.equivalence import EquivalenceClass, equivalence_classes
from repro.defects.model import Defect
from repro.logic.fourval import V4, word_to_string
from repro.camodel.stimuli import Word, is_dynamic_word

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.camodel.stats import GenerationStats

STATIC = "static"
DYNAMIC = "dynamic"
UNDETECTED = "undetected"


@dataclass
class CAModel:
    """The cell-aware model of one cell."""

    cell_name: str
    technology: str
    inputs: Tuple[str, ...]
    output: str
    stimuli: List[Word]
    #: golden output response per stimulus
    golden: List[V4]
    defects: List[Defect]
    #: (defects x stimuli) 0/1 detection matrix
    detection: np.ndarray
    #: defective output response codes, aligned with detection (optional)
    responses: Optional[List[List[V4]]] = None
    #: accounting: electrical simulations the generation spent
    simulation_count: int = 0
    generation_seconds: float = 0.0
    #: detailed generation cost accounting (solves, caches, stage timings)
    stats: Optional["GenerationStats"] = None

    def __post_init__(self) -> None:
        self.detection = np.asarray(self.detection, dtype=np.int8)
        if self.detection.shape != (len(self.defects), len(self.stimuli)):
            raise ValueError(
                f"detection shape {self.detection.shape} does not match "
                f"{len(self.defects)} defects x {len(self.stimuli)} stimuli"
            )
        if len(self.golden) != len(self.stimuli):
            raise ValueError("golden responses do not match stimuli")

    # ------------------------------------------------------------------
    @property
    def n_defects(self) -> int:
        return len(self.defects)

    @property
    def n_stimuli(self) -> int:
        return len(self.stimuli)

    def defect_index(self, name: str) -> int:
        for i, d in enumerate(self.defects):
            if d.name == name:
                return i
        raise KeyError(f"no defect {name!r} in CA model of {self.cell_name}")

    def detection_row(self, name: str) -> np.ndarray:
        """The 0/1 detection row of one defect."""
        return self.detection[self.defect_index(name)]

    def stimulus_strings(self) -> List[str]:
        return [word_to_string(w) for w in self.stimuli]

    # ------------------------------------------------------------------
    def static_mask(self) -> np.ndarray:
        """Boolean mask over stimuli: True where the word is static."""
        return np.array([not is_dynamic_word(w) for w in self.stimuli])

    def defect_type(self, name: str) -> str:
        """Classify a defect: static / dynamic / undetected.

        A *static* defect is caught by at least one static pattern; a
        *dynamic* defect needs a two-pattern (transition) stimulus — the
        stuck-open family; an *undetected* defect is caught by nothing.
        """
        row = self.detection_row(name)
        static = self.static_mask()
        if row[static].any():
            return STATIC
        if row.any():
            return DYNAMIC
        return UNDETECTED

    def type_counts(self) -> Dict[str, int]:
        counts = {STATIC: 0, DYNAMIC: 0, UNDETECTED: 0}
        for d in self.defects:
            counts[self.defect_type(d.name)] += 1
        return counts

    # ------------------------------------------------------------------
    def equivalence(self) -> List[EquivalenceClass]:
        """Defect equivalence classes over the full stimulus set."""
        return equivalence_classes(self.detection, [d.name for d in self.defects])

    def coverage(self) -> float:
        """Fraction of defects detected by at least one stimulus."""
        if self.n_defects == 0:
            return 1.0
        return float((self.detection.any(axis=1)).mean())

    def summary(self) -> Dict[str, object]:
        """Compact description used by reports and examples."""
        classes = self.equivalence()
        out = {
            "cell": self.cell_name,
            "technology": self.technology,
            "inputs": len(self.inputs),
            "stimuli": self.n_stimuli,
            "defects": self.n_defects,
            "equivalence_classes": len(classes),
            "coverage": round(self.coverage(), 4),
            "types": self.type_counts(),
            "simulations": self.simulation_count,
        }
        if self.stats is not None:
            out["generation"] = self.stats.summary()
        return out
