"""Library-level CA model statistics.

Aggregates the quantities the paper's motivation section argues about:
how many simulations a library costs, how defect types distribute, how
redundant the defect universe is, and how all of this scales with cell
complexity.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np

from repro.camodel.model import CAModel, DYNAMIC, STATIC, UNDETECTED
from repro.spice.netlist import CellNetlist

# ----------------------------------------------------------------------
# Metric names (repro.obs registry) GenerationStats is a view over.
# ----------------------------------------------------------------------
M_SOLVES = "camodel.sim.solves"
M_CACHE_HITS = "camodel.sim.cache_hits"
M_BATCHED = "camodel.sim.batched_phases"
M_SIMULATED = "camodel.defects.simulated"
M_SKIPPED = "camodel.defects.skipped"
M_GOLDEN_SECONDS = "camodel.seconds.golden"
M_DEFECT_SECONDS = "camodel.seconds.defects"
M_MERGE_SECONDS = "camodel.seconds.merge"
M_TOTAL_SECONDS = "camodel.seconds.total"
#: histogram (one sample per finished cell) — p50/p95/p99 of per-cell
#: generation wall time in ``--stats`` / inspect output
M_CELL_SECONDS = "camodel.seconds.per_cell"


@dataclass
class GenerationStats:
    """Cost accounting of one :func:`~repro.camodel.generate.generate_ca_model` run.

    Extends the engine's per-simulator ``solve_count`` into a whole-run
    record: how many solver phases actually ran, how many were served
    from the memoization caches, how the wall time split across the
    golden pass / defect loop / merge, and how many worker processes the
    defect loop used.  Attached to :class:`~repro.camodel.model.CAModel`
    and serialized with it.
    """

    #: worker processes used for the defect loop (1 = serial)
    workers: int = 1
    #: solver phase solves actually performed (golden pass included)
    solves: int = 0
    #: memoized phase lookups answered without a solve
    cache_hits: int = 0
    #: phase solves that ran through the vectorized batch kernel (a
    #: subset of ``solves``; 0 when the scalar path was forced)
    batched_phases: int = 0
    #: defects that went through the simulator
    simulated_defects: int = 0
    #: benign / golden-equivalent defects short-circuited before any solver
    skipped_defects: int = 0
    #: wall time of the golden pass (stimuli + reference resistances)
    golden_seconds: float = 0.0
    #: wall time of the per-defect characterization loop
    defect_seconds: float = 0.0
    #: wall time spent merging parallel chunk results (0 when serial)
    merge_seconds: float = 0.0
    #: end-to-end wall time of the generation call
    total_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of phase lookups served from a cache."""
        lookups = self.solves + self.cache_hits
        return self.cache_hits / lookups if lookups else 0.0

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "GenerationStats":
        known = {f.name for f in fields(cls)}
        unknown = sorted(k for k in data if k not in known)
        if unknown:
            # A newer writer added fields this reader does not know; the
            # load still succeeds, but say which keys were dropped instead
            # of silently ignoring them.
            from repro import obs

            obs.events().warning(
                "stats.unknown_keys",
                keys=unknown,
                msg=(
                    "GenerationStats ignoring unknown keys from a newer "
                    f"writer: {', '.join(unknown)}"
                ),
            )
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def from_metrics(
        cls, counters: Mapping[str, float], workers: int = 1
    ) -> "GenerationStats":
        """Build the stats record from a run's metric counter deltas.

        The generation flow accounts everything into the
        :mod:`repro.obs` metrics registry and derives the attached stats
        from it, so the registry is the single source of truth — there is
        no parallel bookkeeping path that could drift.
        """
        return cls(
            workers=workers,
            solves=int(counters.get(M_SOLVES, 0)),
            cache_hits=int(counters.get(M_CACHE_HITS, 0)),
            batched_phases=int(counters.get(M_BATCHED, 0)),
            simulated_defects=int(counters.get(M_SIMULATED, 0)),
            skipped_defects=int(counters.get(M_SKIPPED, 0)),
            golden_seconds=float(counters.get(M_GOLDEN_SECONDS, 0.0)),
            defect_seconds=float(counters.get(M_DEFECT_SECONDS, 0.0)),
            merge_seconds=float(counters.get(M_MERGE_SECONDS, 0.0)),
            total_seconds=float(counters.get(M_TOTAL_SECONDS, 0.0)),
        )

    def summary(self) -> Dict[str, object]:
        """Compact description used by reports and the CLI."""
        return {
            "workers": self.workers,
            "solves": self.solves,
            "cache_hits": self.cache_hits,
            "batched_phases": self.batched_phases,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "simulated_defects": self.simulated_defects,
            "skipped_defects": self.skipped_defects,
            "golden_seconds": round(self.golden_seconds, 4),
            "defect_seconds": round(self.defect_seconds, 4),
            "merge_seconds": round(self.merge_seconds, 4),
            "total_seconds": round(self.total_seconds, 4),
        }


@dataclass
class CellStats:
    """Summary of one cell's CA model."""

    cell_name: str
    function: str
    n_inputs: int
    n_transistors: int
    n_defects: int
    n_stimuli: int
    n_classes: int
    coverage: float
    simulations: int
    types: Dict[str, int]


@dataclass
class LibraryStats:
    """Aggregate over a library's CA models."""

    cells: List[CellStats] = field(default_factory=list)

    def add(self, cell: CellNetlist, model: CAModel) -> None:
        self.cells.append(
            CellStats(
                cell_name=cell.name,
                function=cell.function,
                n_inputs=cell.n_inputs,
                n_transistors=cell.n_transistors,
                n_defects=model.n_defects,
                n_stimuli=model.n_stimuli,
                n_classes=len(model.equivalence()),
                coverage=model.coverage(),
                simulations=model.simulation_count,
                types=model.type_counts(),
            )
        )

    # ------------------------------------------------------------------
    def total_simulations(self) -> int:
        return sum(c.simulations for c in self.cells)

    def mean_coverage(self) -> float:
        if not self.cells:
            return 0.0
        return float(np.mean([c.coverage for c in self.cells]))

    def type_totals(self) -> Dict[str, int]:
        totals = {STATIC: 0, DYNAMIC: 0, UNDETECTED: 0}
        for c in self.cells:
            for key, value in c.types.items():
                totals[key] += value
        return totals

    def redundancy(self) -> float:
        """Fraction of defects removed by equivalence collapsing."""
        defects = sum(c.n_defects for c in self.cells)
        classes = sum(c.n_classes for c in self.cells)
        return 1.0 - classes / defects if defects else 0.0

    def by_function(self) -> Dict[str, Dict[str, float]]:
        """Per-function means of coverage and redundancy."""
        out: Dict[str, Dict[str, float]] = {}
        groups: Dict[str, List[CellStats]] = {}
        for c in self.cells:
            groups.setdefault(c.function, []).append(c)
        for function, items in groups.items():
            out[function] = {
                "cells": len(items),
                "coverage": float(np.mean([c.coverage for c in items])),
                "classes": float(np.mean([c.n_classes for c in items])),
                "simulations": float(np.mean([c.simulations for c in items])),
            }
        return out

    def simulations_by_size(self) -> List[Tuple[int, float]]:
        """(transistor count, mean simulations) series — the scaling curve
        behind the paper's months-per-library complaint."""
        groups: Dict[int, List[int]] = {}
        for c in self.cells:
            groups.setdefault(c.n_transistors, []).append(c.simulations)
        return [
            (size, float(np.mean(values)))
            for size, values in sorted(groups.items())
        ]


def library_stats(
    pairs: Iterable[Tuple[CellNetlist, CAModel]]
) -> LibraryStats:
    """Build :class:`LibraryStats` from (cell, model) pairs."""
    stats = LibraryStats()
    for cell, model in pairs:
        stats.add(cell, model)
    return stats
