"""UDFM-style export of CA models.

Industrial CA models are delivered as User-Defined Fault Model (UDFM)
files consumed by ATPG: per cell, per fault, a list of test alternatives,
each a set of pin conditions that detects the fault.  This module writes
and reads a UDFM-flavoured text format:

```
UDFM {
  version: 1;
  cell("S28_ND2X1") {
    fault("D0") {  // open on M0.D
      test { statics: A=0, B=1; }
      test { transitions: A=R, B=1; }
    }
  }
}
```

One ``test`` block is emitted per detecting stimulus of the defect's
equivalence-class representative (optionally capped), which is exactly
the "detection conditions" payload the paper describes CA models carrying.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.camodel.model import CAModel


def _condition(model: CAModel, stimulus_index: int) -> Tuple[str, str]:
    """(kind, rendered pin conditions) of one stimulus."""
    word = model.stimuli[stimulus_index]
    dynamic = any(v.is_dynamic for v in word)
    kind = "transitions" if dynamic else "statics"
    pins = ", ".join(
        f"{pin}={symbol}" for pin, symbol in zip(model.inputs, word)
    )
    return kind, pins


def to_udfm(
    model: CAModel,
    max_tests_per_fault: int = 4,
    collapse_equivalent: bool = True,
    include_undetected: bool = False,
) -> str:
    """Render one CA model as UDFM text."""
    lines: List[str] = ["UDFM {", "  version: 1;", f'  cell("{model.cell_name}") {{']
    if collapse_equivalent:
        entries = [
            (c.representative, c.members, c.detection)
            for c in model.equivalence()
        ]
    else:
        entries = [
            (d.name, (d.name,), tuple(model.detection[i]))
            for i, d in enumerate(model.defects)
        ]
    for representative, members, detection in entries:
        detecting = [i for i, bit in enumerate(detection) if bit]
        if not detecting and not include_undetected:
            continue
        defect = model.defects[model.defect_index(representative)]
        alias = "" if len(members) == 1 else f"  // +{len(members) - 1} equivalent"
        lines.append(f'    fault("{representative}") {{  // {defect.describe()}{alias}')
        for index in detecting[:max_tests_per_fault]:
            kind, pins = _condition(model, index)
            lines.append(f"      test {{ {kind}: {pins}; }}")
        lines.append("    }")
    lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def save_udfm(model: CAModel, path: Union[str, Path], **kwargs: Any) -> Path:
    """Write UDFM text to *path*."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_udfm(model, **kwargs))
    return path


_FAULT_RE = re.compile(r'fault\("([^"]+)"\)')
_CELL_RE = re.compile(r'cell\("([^"]+)"\)')
_TEST_RE = re.compile(r"test \{ (statics|transitions): ([^;]+); \}")


def parse_udfm(text: str) -> Dict[str, Dict[str, List[Dict[str, str]]]]:
    """Parse UDFM text into ``{cell: {fault: [ {pin: symbol}, ... ]}}``.

    A light reader sufficient for round-trip checks and for consuming the
    exported files in scripted flows.
    """
    cells: Dict[str, Dict[str, List[Dict[str, str]]]] = {}
    current_cell: Optional[str] = None
    current_fault: Optional[str] = None
    for line in text.splitlines():
        stripped = line.strip()
        cell_match = _CELL_RE.search(stripped)
        if cell_match:
            current_cell = cell_match.group(1)
            cells[current_cell] = {}
            continue
        fault_match = _FAULT_RE.search(stripped)
        if fault_match and current_cell is not None:
            current_fault = fault_match.group(1)
            cells[current_cell][current_fault] = []
            continue
        test_match = _TEST_RE.search(stripped)
        if test_match and current_cell is not None and current_fault is not None:
            conditions = {}
            for assignment in test_match.group(2).split(","):
                pin, _, symbol = assignment.strip().partition("=")
                conditions[pin] = symbol
            cells[current_cell][current_fault].append(conditions)
    return cells
