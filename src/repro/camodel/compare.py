"""CA model comparison: prediction quality in *test* terms.

Row accuracy (the paper's reported metric) treats all errors alike, but a
predicted CA model fails asymmetrically:

* a **test escape** — the reference detects a defect with some stimulus
  and the predicted model misses that detection.  If patterns are chosen
  from the predicted model, a real defect may ship untested;
* an **overkill** — the predicted model claims a detection the reference
  lacks; harmless for quality, it wastes pattern slots and misleads
  diagnosis.

:func:`compare_models` produces both views plus defect-level agreement
(the unit that matters for pattern generation: does the *set of detecting
stimuli per defect* survive prediction?).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.camodel.model import CAModel
from repro.camodel.patterns import select_patterns


class ComparisonError(ValueError):
    """Raised when two models are not comparable."""


@dataclass
class ModelDiff:
    """Cell-level comparison of a predicted model against a reference."""

    cell_name: str
    #: per-(defect, stimulus) agreement — the paper's accuracy
    bit_accuracy: float
    #: fraction of reference detections missed by the prediction
    escape_rate: float
    #: fraction of predicted detections absent from the reference
    overkill_rate: float
    #: defects whose entire detection row matches
    exact_defects: int
    n_defects: int
    #: defects detectable in the reference but completely lost
    lost_defects: Tuple[str, ...] = ()
    #: coverage achieved on the *reference* by patterns selected from the
    #: *predicted* model — the end-to-end test-quality number
    pattern_coverage: float = 1.0

    @property
    def exact_fraction(self) -> float:
        return self.exact_defects / self.n_defects if self.n_defects else 1.0


def compare_models(reference: CAModel, predicted: CAModel) -> ModelDiff:
    """Compare a predicted CA model against its simulated reference."""
    if reference.detection.shape != predicted.detection.shape:
        raise ComparisonError(
            f"shape mismatch: reference {reference.detection.shape} vs "
            f"predicted {predicted.detection.shape}"
        )
    if [d.name for d in reference.defects] != [d.name for d in predicted.defects]:
        raise ComparisonError("defect universes differ")

    ref = reference.detection.astype(bool)
    pred = predicted.detection.astype(bool)

    bit_accuracy = float((ref == pred).mean())
    ref_detections = int(ref.sum())
    pred_detections = int(pred.sum())
    escapes = int((ref & ~pred).sum())
    overkills = int((~ref & pred).sum())
    escape_rate = escapes / ref_detections if ref_detections else 0.0
    overkill_rate = overkills / pred_detections if pred_detections else 0.0

    exact = int((ref == pred).all(axis=1).sum())
    lost = tuple(
        reference.defects[i].name
        for i in range(ref.shape[0])
        if ref[i].any() and not pred[i].any()
    )

    # end-to-end: pick patterns from the prediction, score on the reference
    chosen = select_patterns(predicted).stimuli
    detectable = ref.any(axis=1)
    if detectable.any() and chosen:
        covered = ref[detectable][:, list(chosen)].any(axis=1)
        pattern_coverage = float(covered.mean())
    elif not detectable.any():
        pattern_coverage = 1.0
    else:
        pattern_coverage = 0.0

    return ModelDiff(
        cell_name=reference.cell_name,
        bit_accuracy=bit_accuracy,
        escape_rate=escape_rate,
        overkill_rate=overkill_rate,
        exact_defects=exact,
        n_defects=ref.shape[0],
        lost_defects=lost,
        pattern_coverage=pattern_coverage,
    )


@dataclass
class LibraryDiff:
    """Aggregate of many :class:`ModelDiff` (e.g. one per predicted cell)."""

    diffs: List[ModelDiff] = field(default_factory=list)

    def add(self, diff: ModelDiff) -> None:
        self.diffs.append(diff)

    def summary(self) -> Dict[str, float]:
        if not self.diffs:
            return {}
        return {
            "cells": len(self.diffs),
            "mean_bit_accuracy": float(
                np.mean([d.bit_accuracy for d in self.diffs])
            ),
            "mean_escape_rate": float(
                np.mean([d.escape_rate for d in self.diffs])
            ),
            "mean_overkill_rate": float(
                np.mean([d.overkill_rate for d in self.diffs])
            ),
            "mean_pattern_coverage": float(
                np.mean([d.pattern_coverage for d in self.diffs])
            ),
            "cells_with_lost_defects": sum(
                1 for d in self.diffs if d.lost_defects
            ),
        }
