"""CA model file format (read / write).

A simple self-describing JSON format: portable, diff-friendly, and compact
enough for library-scale caches (detection rows are stored as '0'/'1'
strings).  This stands in for the commercial tools' proprietary CA model
file formats the paper's flow parses ("the output information is then
parsed to the desired file format", Section V.C).

Versioning rules: optional additive keys (e.g. ``stats``) do not bump
``FORMAT_VERSION`` — readers ignore keys they do not know and tolerate
missing optional ones; any change to the meaning of existing keys does.
Writes go through a same-directory temporary file and ``os.replace`` so
a crash (or a concurrent writer) can never leave a torn file behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.camodel.model import CAModel
from repro.camodel.stats import GenerationStats
from repro.defects.model import Defect
from repro.logic.fourval import V4, parse_word

FORMAT_VERSION = 1


def _write_json_atomic(path: Path, payload: Dict) -> None:
    """Serialize *payload* to *path* without ever exposing a torn file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def model_to_dict(model: CAModel) -> Dict:
    """Serializable representation of a CA model."""
    out = {
        "format": FORMAT_VERSION,
        "cell": model.cell_name,
        "technology": model.technology,
        "inputs": list(model.inputs),
        "output": model.output,
        "stimuli": model.stimulus_strings(),
        "golden": "".join(str(v) for v in model.golden),
        "defects": [
            {"name": d.name, "kind": d.kind, "location": list(d.location)}
            for d in model.defects
        ],
        "detection": [
            "".join(str(int(v)) for v in row) for row in model.detection
        ],
        "simulation_count": model.simulation_count,
        "generation_seconds": model.generation_seconds,
    }
    if model.stats is not None:
        out["stats"] = model.stats.to_dict()
    return out


def model_from_dict(data: Dict) -> CAModel:
    """Inverse of :func:`model_to_dict`."""
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported CA model format {data.get('format')!r}")
    stimuli = [parse_word(s) for s in data["stimuli"]]
    golden = [V4.from_string(c) for c in data["golden"]]
    defects = [
        Defect(d["name"], d["kind"], tuple(d["location"])) for d in data["defects"]
    ]
    detection = np.array(
        [[int(c) for c in row] for row in data["detection"]], dtype=np.int8
    )
    if detection.size == 0:
        detection = detection.reshape(len(defects), len(stimuli))
    stats = None
    if isinstance(data.get("stats"), dict):
        stats = GenerationStats.from_dict(data["stats"])
    return CAModel(
        cell_name=data["cell"],
        technology=data.get("technology", ""),
        inputs=tuple(data["inputs"]),
        output=data["output"],
        stimuli=stimuli,
        golden=golden,
        defects=defects,
        detection=detection,
        simulation_count=int(data.get("simulation_count", 0)),
        generation_seconds=float(data.get("generation_seconds", 0.0)),
        stats=stats,
    )


def save_model(model: CAModel, path: Union[str, Path]) -> Path:
    """Write one CA model to *path* (JSON, atomic)."""
    path = Path(path)
    _write_json_atomic(path, model_to_dict(model))
    return path


def load_model(path: Union[str, Path]) -> CAModel:
    """Read one CA model from *path*."""
    return model_from_dict(json.loads(Path(path).read_text()))


def save_models(models: List[CAModel], path: Union[str, Path]) -> Path:
    """Write a list of CA models into one file (a 'CA model library').

    The write is atomic (temp file + ``os.replace``): a crash mid-write
    or two concurrent writers can never leave a torn library file that
    poisons every later cache load.
    """
    path = Path(path)
    payload = {"format": FORMAT_VERSION, "models": [model_to_dict(m) for m in models]}
    _write_json_atomic(path, payload)
    return path


def load_models(path: Union[str, Path]) -> List[CAModel]:
    """Read a CA model library file."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported CA library format {payload.get('format')!r}")
    return [model_from_dict(d) for d in payload["models"]]
