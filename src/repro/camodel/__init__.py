"""CA model data structures, conventional generation flow and file IO."""

from repro.camodel.stimuli import (
    POLICIES,
    Word,
    adjacent_dynamic_words,
    exhaustive_dynamic_words,
    expected_count,
    is_dynamic_word,
    static_words,
    stimuli,
)
from repro.camodel.model import CAModel, DYNAMIC, STATIC, UNDETECTED
from repro.camodel.generate import (
    AUTO_EXHAUSTIVE_LIMIT,
    detect,
    generate_ca_model,
    generate_multi,
    resolve_policy,
)
from repro.camodel.io import (
    load_model,
    load_models,
    model_from_dict,
    model_to_dict,
    save_model,
    save_models,
)
from repro.camodel.batch import (
    LibraryGenerationError,
    ensure_unique_cell_names,
    generate_library,
)
from repro.camodel.planstore import PlanStore, plan_store
from repro.camodel.throughput import run_throughput
from repro.camodel.merge import MergedModel, MergeError, merge_models
from repro.camodel.udfm import parse_udfm, save_udfm, to_udfm
from repro.camodel.compare import ComparisonError, LibraryDiff, ModelDiff, compare_models
from repro.camodel.stats import (
    CellStats,
    GenerationStats,
    LibraryStats,
    library_stats,
)
from repro.camodel.patterns import (
    DiagnosisCandidate,
    PatternSet,
    diagnose,
    select_patterns,
)

__all__ = [
    "Word",
    "POLICIES",
    "stimuli",
    "static_words",
    "adjacent_dynamic_words",
    "exhaustive_dynamic_words",
    "expected_count",
    "is_dynamic_word",
    "CAModel",
    "STATIC",
    "DYNAMIC",
    "UNDETECTED",
    "generate_ca_model",
    "generate_multi",
    "detect",
    "resolve_policy",
    "AUTO_EXHAUSTIVE_LIMIT",
    "save_model",
    "load_model",
    "save_models",
    "load_models",
    "model_to_dict",
    "model_from_dict",
    "select_patterns",
    "diagnose",
    "PatternSet",
    "DiagnosisCandidate",
    "CellStats",
    "GenerationStats",
    "LibraryStats",
    "library_stats",
    "compare_models",
    "ModelDiff",
    "LibraryDiff",
    "ComparisonError",
    "generate_library",
    "LibraryGenerationError",
    "ensure_unique_cell_names",
    "PlanStore",
    "plan_store",
    "run_throughput",
    "to_udfm",
    "save_udfm",
    "parse_udfm",
    "merge_models",
    "MergedModel",
    "MergeError",
]
