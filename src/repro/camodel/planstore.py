"""Process-local plan store: parse and plan once, replay many times.

The library paths (:mod:`repro.camodel.batch` cell fan-out,
:mod:`repro.resilience.runner` retries and chunked defect pools) used to
rebuild the same immutable inputs over and over: every worker payload
re-parsed the cell netlist, re-split the stimulus words and rebuilt the
:class:`~repro.simulation.switchgraph.CellTopology` on every attempt.
The :class:`PlanStore` is a content-keyed, process-local cache of exactly
those three products:

* :meth:`stimulus_plan` — the (words, plans) pair of a stimulus policy.
  Splitting a word is a property of the word alone, so the plans of
  ``(n_inputs, policy)`` are shared across every cell of that shape.
* :meth:`cell` — the parsed :class:`~repro.spice.netlist.CellNetlist` of
  a netlist text.  Repeated attempts (retries, defect chunks) of one
  cell in one worker process parse once.
* :meth:`topology` — the cell's :class:`CellTopology`.  Checked-out
  topologies are **detached** from any accumulated phase state first
  (:meth:`CellTopology.detach_phase_state`), so a replayed generation
  solves from scratch and its counters — hence its canonical artifact —
  are byte-identical to a fresh build.  Cross-run phase reuse is the
  job of the on-disk :class:`~repro.simulation.phasecache.PhaseCacheStore`,
  which re-warms through the counter-neutral prefetch path.

The store is a module singleton (:func:`plan_store`); forked pool
workers inherit the parent's entries copy-on-write and extend their own
copy.  Reuse is observable as the ``throughput.plan_reuse`` counter.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import asdict
from typing import Dict, Iterator, List, Optional, Tuple

from repro import obs
from repro.camodel.stimuli import Word, stimuli as make_stimuli
from repro.library.technology import ElectricalParams
from repro.simulation.engine import WordPlan, split_word
from repro.simulation.switchgraph import CellTopology, DRIVER_RESISTANCE
from repro.spice.netlist import CellNetlist

#: obs metric name (registered in repro.lint.catalog)
M_PLAN_REUSE = "throughput.plan_reuse"


def _params_key(params: ElectricalParams) -> Tuple[Tuple[str, float], ...]:
    return tuple(sorted(asdict(params).items()))


class PlanStore:
    """Content-keyed cache of parsed cells, stimulus plans and topologies."""

    def __init__(self) -> None:
        #: (n_inputs, policy) -> (words, plans)
        self._stimuli: Dict[
            Tuple[int, str], Tuple[List[Word], List[WordPlan]]
        ] = {}
        #: (netlist text, technology) -> parsed cell
        self._cells: Dict[Tuple[str, Optional[str]], CellNetlist] = {}
        #: (id(cell), params key, driver resistance) -> (cell, topology).
        #: The strong cell reference pins the id: it cannot be recycled
        #: for a different netlist while the entry lives, and the
        #: ``is``-check below rejects any entry whose cell is not the
        #: caller's object.
        self._topologies: Dict[
            Tuple[int, Tuple[Tuple[str, float], ...], float],
            Tuple[CellNetlist, CellTopology],
        ] = {}

    # ------------------------------------------------------------------
    def stimulus_plan(
        self, n_inputs: int, policy: str
    ) -> Tuple[List[Word], List[WordPlan]]:
        """Words and per-word split plans of one resolved stimulus policy.

        *policy* must already be resolved (no ``'auto'``) — the store
        must not alias two different effective policies under one key.
        Returns fresh list objects over shared immutable entries, so
        callers may attach them to models without cross-linking.
        """
        key = (n_inputs, policy)
        cached = self._stimuli.get(key)
        if cached is None:
            words = make_stimuli(n_inputs, policy)
            plans = [split_word(word, n_inputs) for word in words]
            cached = (words, plans)
            self._stimuli[key] = cached
        else:
            obs.metrics().inc(M_PLAN_REUSE)
        return list(cached[0]), list(cached[1])

    # ------------------------------------------------------------------
    def cell(self, cell_text: str, technology: Optional[str]) -> CellNetlist:
        """Parsed cell of one netlist text (content-keyed)."""
        key = (cell_text, technology)
        cached = self._cells.get(key)
        if cached is not None:
            obs.metrics().inc(M_PLAN_REUSE)
            return cached
        from repro.spice.parser import parse_cell

        parsed = parse_cell(cell_text, technology=technology)
        self._cells[key] = parsed
        return parsed

    # ------------------------------------------------------------------
    def topology(
        self,
        cell: CellNetlist,
        params: ElectricalParams,
        driver_resistance: float = DRIVER_RESISTANCE,
    ) -> CellTopology:
        """Checked-out topology of *cell*, detached from any phase state.

        Detaching keeps replay identity: a reused topology starts every
        generation with empty phase caches and no attached store, so its
        solve/cache-hit counters match a freshly built one.
        """
        key = (id(cell), _params_key(params), driver_resistance)
        entry = self._topologies.get(key)
        if entry is not None and entry[0] is cell:
            topology = entry[1]
            topology.detach_phase_state()
            obs.metrics().inc(M_PLAN_REUSE)
            return topology
        topology = CellTopology(
            cell, params=params, driver_resistance=driver_resistance
        )
        self._topologies[key] = (cell, topology)
        return topology


_STORE = PlanStore()


def plan_store() -> PlanStore:
    """The process-local :class:`PlanStore` singleton."""
    return _STORE


@contextmanager
def fresh_store() -> Iterator[PlanStore]:
    """Swap in an empty store for the duration of one replayed attempt.

    Counter identity across execution environments: a cell attempt
    replayed inside a long-lived service worker
    (:mod:`repro.service.worker`) must record exactly the counters a
    one-process-per-attempt run (:mod:`repro.resilience.runner`)
    records, or ``RunLedger.metrics_total()`` would diverge between an
    N-worker run and a sequential one.  A warm singleton would add
    ``throughput.plan_reuse`` hits the cold-process baseline never
    sees, so the worker runs each attempt against a fresh store and
    restores the previous one afterwards.
    """
    global _STORE
    previous = _STORE
    _STORE = PlanStore()
    try:
        yield _STORE
    finally:
        _STORE = previous
