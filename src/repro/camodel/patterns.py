"""Cell-aware test pattern selection.

The point of CA models is "to guide the test pattern generation and CA
diagnosis phases" (paper, Section I).  This module implements the two
classic consumers of a detection table:

* :func:`select_patterns` — a minimal-ish stimulus set covering every
  detectable defect (greedy weighted set cover, the standard compaction
  heuristic);
* :func:`diagnose` — cell-level CA diagnosis: given observed per-stimulus
  pass/fail behaviour, rank the defect (equivalence classes) whose
  signature best explains it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.camodel.model import CAModel
from repro.logic.fourval import word_to_string


@dataclass(frozen=True)
class PatternSet:
    """Result of test-pattern selection for one cell."""

    #: selected stimulus indices, in selection order
    stimuli: Tuple[int, ...]
    #: fraction of detectable defects covered by the selection
    coverage: float
    #: defects (names) not detectable by any stimulus at all
    undetectable: Tuple[str, ...]

    def words(self, model: CAModel) -> List[str]:
        return [word_to_string(model.stimuli[i]) for i in self.stimuli]


def select_patterns(
    model: CAModel,
    max_patterns: Optional[int] = None,
    collapse_equivalent: bool = True,
) -> PatternSet:
    """Greedy minimal stimulus selection covering all detectable defects.

    With *collapse_equivalent* the cover targets defect equivalence
    classes (detecting one member detects all); limiting *max_patterns*
    trades pattern count against coverage.
    """
    if collapse_equivalent:
        classes = model.equivalence()
        rows = np.array([c.detection for c in classes], dtype=np.int8)
        names = [c.representative for c in classes]
    else:
        rows = model.detection
        names = [d.name for d in model.defects]

    detectable = rows.any(axis=1)
    undetectable = tuple(
        name for name, ok in zip(names, detectable) if not ok
    )
    target = rows[detectable]
    n_targets = target.shape[0]
    if n_targets == 0:
        return PatternSet(stimuli=(), coverage=1.0, undetectable=undetectable)

    covered = np.zeros(n_targets, dtype=bool)
    selected: List[int] = []
    budget = max_patterns if max_patterns is not None else target.shape[1]
    while not covered.all() and len(selected) < budget:
        gains = target[~covered].sum(axis=0)
        best = int(np.argmax(gains))
        if gains[best] == 0:
            break
        selected.append(best)
        covered |= target[:, best].astype(bool)
    return PatternSet(
        stimuli=tuple(selected),
        coverage=float(covered.mean()),
        undetectable=undetectable,
    )


@dataclass(frozen=True)
class DiagnosisCandidate:
    """One ranked explanation of an observed failure signature."""

    defect_names: Tuple[str, ...]
    score: float
    #: exact signature match?
    exact: bool


def diagnose(
    model: CAModel,
    observed_failures: Sequence[int],
    top: int = 5,
) -> List[DiagnosisCandidate]:
    """Rank defect equivalence classes against an observed fail vector.

    *observed_failures* is a 0/1 vector over the model's stimuli (1 =
    tester observed a mismatch).  Candidates are scored by signature
    agreement (1 - normalized Hamming distance); an exact match means the
    class's detection row equals the observation.
    """
    observed = np.asarray(observed_failures, dtype=np.int8)
    if observed.shape != (model.n_stimuli,):
        raise ValueError(
            f"observation length {observed.shape} does not match "
            f"{model.n_stimuli} stimuli"
        )
    candidates: List[DiagnosisCandidate] = []
    for eq_class in model.equivalence():
        row = np.array(eq_class.detection, dtype=np.int8)
        if not row.any() and not observed.any():
            continue
        distance = int(np.sum(row != observed))
        score = 1.0 - distance / model.n_stimuli
        candidates.append(
            DiagnosisCandidate(
                defect_names=eq_class.members,
                score=score,
                exact=distance == 0,
            )
        )
    candidates.sort(key=lambda c: (-c.score, c.defect_names))
    return candidates[:top]
