"""Merging per-output CA models of multi-output cells.

Per-output characterization (:func:`repro.camodel.generate.generate_multi`)
produces one detection table per output; testers observe all outputs at
once, so the *cell-level* view is the union: a defect is detected by a
stimulus when any output exposes it.  The merged view also records which
outputs expose each defect, which diagnosis uses to narrow candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.camodel.model import CAModel


class MergeError(ValueError):
    """Raised when per-output models are inconsistent."""


@dataclass
class MergedModel:
    """Cell-level union of per-output CA models."""

    cell_name: str
    outputs: Tuple[str, ...]
    #: union detection table (defects x stimuli)
    detection: np.ndarray
    #: per-output detection tables, keyed by output port
    per_output: Dict[str, np.ndarray] = field(default_factory=dict)
    defect_names: Tuple[str, ...] = ()

    def coverage(self) -> float:
        if self.detection.shape[0] == 0:
            return 1.0
        return float(self.detection.any(axis=1).mean())

    def observing_outputs(self, defect_name: str) -> Tuple[str, ...]:
        """Outputs through which a defect is observable at all."""
        index = self.defect_names.index(defect_name)
        return tuple(
            port
            for port in self.outputs
            if self.per_output[port][index].any()
        )

    def exclusive_defects(self, output: str) -> Tuple[str, ...]:
        """Defects only observable through *output* — the reason
        multi-output cells must be characterized on every port."""
        out: List[str] = []
        for i, name in enumerate(self.defect_names):
            if not self.per_output[output][i].any():
                continue
            others = any(
                self.per_output[port][i].any()
                for port in self.outputs
                if port != output
            )
            if not others:
                out.append(name)
        return tuple(out)


def merge_models(models: Mapping[str, CAModel]) -> MergedModel:
    """Union per-output models (as from ``generate_multi``) into one view."""
    if not models:
        raise MergeError("nothing to merge")
    items = list(models.items())
    reference = items[0][1]
    for port, model in items:
        if model.cell_name != reference.cell_name:
            raise MergeError(
                f"cell mismatch: {model.cell_name} vs {reference.cell_name}"
            )
        if model.stimuli != reference.stimuli:
            raise MergeError(f"stimulus sets differ on output {port}")
        if [d.name for d in model.defects] != [
            d.name for d in reference.defects
        ]:
            raise MergeError(f"defect universes differ on output {port}")

    union = np.zeros_like(reference.detection)
    per_output: Dict[str, np.ndarray] = {}
    for port, model in items:
        per_output[port] = model.detection.astype(np.int8)
        union |= per_output[port]
    return MergedModel(
        cell_name=reference.cell_name,
        outputs=tuple(port for port, _m in items),
        detection=union,
        per_output=per_output,
        defect_names=tuple(d.name for d in reference.defects),
    )
