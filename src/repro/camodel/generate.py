"""Conventional (simulation-based) CA model generation — Fig. 1 of the paper.

For every defect in the universe, the cell is simulated against the full
stimulus set and each response compared with the golden one.  Detection
requires a deterministic mismatch: an X defective response (floating or
contended output) is *not* a detection.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.camodel.model import CAModel
from repro.camodel.stimuli import Word, stimuli as make_stimuli
from repro.defects.model import Defect
from repro.defects.universe import default_universe
from repro.library.technology import ElectricalParams, Technology
from repro.library.technology import get as get_technology
from repro.logic.fourval import V4
from repro.simulation.engine import CellSimulator
from repro.spice.netlist import CellNetlist

#: with 'auto', exhaustive stimuli are used up to this input count and the
#: adjacent (single-input-transition) set beyond — see DESIGN.md
AUTO_EXHAUSTIVE_LIMIT = 4

#: a defect whose output transition is driven through more than this factor
#: of the golden effective resistance is delay-detected (the switch-level
#: proxy for the transient "slow cell" detections of a SPICE-based flow);
#: 1.25 catches the loss of one finger out of four (ratio 4/3)
DEFAULT_SLOW_FACTOR = 1.25


def resolve_policy(n_inputs: int, policy: str) -> str:
    if policy != "auto":
        return policy
    return "exhaustive" if n_inputs <= AUTO_EXHAUSTIVE_LIMIT else "adjacent"


def detect(golden: V4, defective: V4) -> int:
    """Paper detection rule: deterministic mismatch only."""
    if not defective.is_known:
        return 0
    return int(defective is not golden)


def generate_ca_model(
    cell: CellNetlist,
    params: Optional[ElectricalParams] = None,
    policy: str = "auto",
    universe: Optional[Sequence[Defect]] = None,
    keep_responses: bool = False,
    delay_detection: bool = True,
    slow_factor: float = DEFAULT_SLOW_FACTOR,
    output: Optional[str] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> CAModel:
    """Run the conventional generation flow for one cell.

    Parameters
    ----------
    params:
        Electrical parameters; defaults to the cell's technology if it
        names a registered one, else generic parameters.
    policy:
        Stimulus policy ('auto', 'exhaustive', 'adjacent', 'static').
    universe:
        Defect list; defaults to all intra-transistor opens and shorts.
    keep_responses:
        Also record the full defective response matrix (heavier; useful
        for analysis and examples).
    delay_detection:
        Also flag defects whose output transition is logically correct but
        driven through > *slow_factor* x the golden effective resistance
        (delay detection; catches single-finger opens in parallel stacks).
    output:
        Cell output to characterize (first output by default); use
        :func:`generate_multi` for all outputs of a multi-output cell.
    progress:
        Optional callback ``(done, total)`` per defect.
    """
    started = time.perf_counter()
    if params is None:
        params = _default_params(cell)
    port = output or cell.outputs[0]
    if port not in cell.outputs:
        raise ValueError(f"{port!r} is not an output of {cell.name}")
    words = make_stimuli(cell.n_inputs, resolve_policy(cell.n_inputs, policy))
    defects = list(universe) if universe is not None else default_universe(cell)

    golden_sim = CellSimulator(cell, params=params)
    golden = [golden_sim.output_response(w, output=port) for w in words]
    transition_cols = [
        col for col, response in enumerate(golden) if response.is_dynamic
    ]
    golden_resistance = {}
    if delay_detection:
        for col in transition_cols:
            golden_resistance[col] = golden_sim.output_drive_resistance(
                words[col], output=port
            )

    detection = np.zeros((len(defects), len(words)), dtype=np.int8)
    responses: Optional[List[List[V4]]] = [] if keep_responses else None
    simulation_count = len(words)  # the golden pass

    for row, defect in enumerate(defects):
        effect = defect.effect(cell, params.short_resistance)
        if effect.benign or effect.is_golden:
            if responses is not None:
                responses.append(list(golden))
        else:
            sim = CellSimulator(cell, params=params, effect=effect)
            row_responses: List[V4] = []
            for col, word in enumerate(words):
                response = sim.output_response(word, output=port)
                detection[row, col] = detect(golden[col], response)
                row_responses.append(response)
            if delay_detection:
                for col in transition_cols:
                    if detection[row, col] or row_responses[col] is not golden[col]:
                        continue
                    reference = golden_resistance[col]
                    measured = sim.output_drive_resistance(words[col], output=port)
                    if measured > slow_factor * reference:
                        detection[row, col] = 1
            simulation_count += len(words)
            if responses is not None:
                responses.append(row_responses)
        if progress is not None:
            progress(row + 1, len(defects))

    return CAModel(
        cell_name=cell.name,
        technology=cell.technology,
        inputs=tuple(cell.inputs),
        output=port,
        stimuli=words,
        golden=golden,
        defects=defects,
        detection=detection,
        responses=responses,
        simulation_count=simulation_count,
        generation_seconds=time.perf_counter() - started,
    )


def generate_multi(
    cell: CellNetlist,
    params: Optional[ElectricalParams] = None,
    policy: str = "auto",
    **kwargs,
) -> dict:
    """Characterize every output of a multi-output cell.

    Industrial CA flows keep one detection table per output; this wrapper
    returns ``{output port: CAModel}``.  (Each output currently re-runs
    the defect simulations; the per-cell phase caches keep the overhead
    modest for the handful of multi-output cells.)
    """
    return {
        port: generate_ca_model(
            cell, params=params, policy=policy, output=port, **kwargs
        )
        for port in cell.outputs
    }


def _default_params(cell: CellNetlist) -> ElectricalParams:
    if cell.technology:
        try:
            return get_technology(cell.technology).electrical
        except KeyError:
            pass
    return ElectricalParams()
