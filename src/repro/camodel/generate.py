"""Conventional (simulation-based) CA model generation — Fig. 1 of the paper.

For every defect in the universe, the cell is simulated against the full
stimulus set and each response compared with the golden one.  Detection
requires a deterministic mismatch: an X defective response (floating or
contended output) is *not* a detection.

The per-defect loop is the hot path of the whole reproduction (the very
cost the paper attacks); three levers keep it fast (see
``docs/performance.md``):

* **Shared structure** — the cell's switch-level topology (net indexing,
  on-conductances, driver edges) is built once per cell as a
  :class:`~repro.simulation.switchgraph.CellTopology` and cheaply
  specialized per defect effect; benign / golden-equivalent defects
  short-circuit before any solver is built; and phases solved under one
  defect are shared with every signature-equal defect through the
  topology's cross-defect phase cache.
* **Batched solving** — each (defect, stimulus set) pair is planned as
  one unit: :meth:`~repro.simulation.engine.CellSimulator.solve_words`
  dedups the phase set and runs it through the vectorized NumPy kernel
  (:meth:`~repro.simulation.solver.StaticSolver.solve_batch`), which is
  byte-identical to the scalar path (``batched=False`` forces the scalar
  reference).
* **Defect-level parallelism** — ``parallelism=N`` splits the defect
  universe into contiguous chunks characterized on a process pool and
  merges the per-chunk detection blocks; the result is byte-identical to
  the serial run.  This saturates all cores even for a single large cell,
  the case cell-level fan-out (:mod:`repro.camodel.batch`) cannot help.

Multi-output cells are characterized in **one sweep**: every solved phase
carries the codes of all nets, so :func:`generate_multi` runs a single
golden pass and a single defect loop and reads one detection table per
output port out of it, instead of paying O(outputs) full simulations.

Cost accounting is collected into a
:class:`~repro.camodel.stats.GenerationStats` attached to the returned
model.
"""

from __future__ import annotations

import multiprocessing
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.resilience import faults as _faults
from repro.camodel.model import CAModel
from repro.camodel.stats import (
    GenerationStats,
    M_BATCHED,
    M_CACHE_HITS,
    M_DEFECT_SECONDS,
    M_GOLDEN_SECONDS,
    M_MERGE_SECONDS,
    M_SIMULATED,
    M_SKIPPED,
    M_CELL_SECONDS,
    M_SOLVES,
    M_TOTAL_SECONDS,
)
from repro.camodel.planstore import plan_store
from repro.camodel.stimuli import Word
from repro.defects.model import Defect
from repro.defects.universe import default_universe
from repro.library.technology import ElectricalParams
from repro.library.technology import get as get_technology
from repro.logic.fourval import V4
from repro.simulation.engine import (
    CellSimulator,
    WordPlan,
    solve_words_across,
    split_word,
)
from repro.simulation.phasecache import PhaseCacheStore, attach_store
from repro.simulation.switchgraph import CellTopology, DefectEffect
from repro.spice.netlist import CellNetlist

#: accepted forms of the on-disk phase-cache argument: a directory path
#: or an already-constructed store (``None`` disables persistence)
PhaseCacheArg = Optional[Union[str, Path, PhaseCacheStore]]

#: with 'auto', exhaustive stimuli are used up to this input count and the
#: adjacent (single-input-transition) set beyond — see DESIGN.md
AUTO_EXHAUSTIVE_LIMIT = 4

#: a defect whose output transition is driven through more than this factor
#: of the golden effective resistance is delay-detected (the switch-level
#: proxy for the transient "slow cell" detections of a SPICE-based flow);
#: 1.25 catches the loss of one finger out of four (ratio 4/3)
DEFAULT_SLOW_FACTOR = 1.25

#: below this many defects a process pool costs more than it saves
MIN_DEFECTS_PER_WORKER = 8


def resolve_policy(n_inputs: int, policy: str) -> str:
    if policy != "auto":
        return policy
    return "exhaustive" if n_inputs <= AUTO_EXHAUSTIVE_LIMIT else "adjacent"


def detect(golden: V4, defective: V4) -> int:
    """Paper detection rule: deterministic mismatch only."""
    if not defective.is_known:
        return 0
    return int(defective is not golden)


def _port_responses(
    solved: Sequence[Tuple[List[int], List[int]]], node: int
) -> List[V4]:
    """Per-word output symbols of one port from whole-net solved phases."""
    return [V4.from_phases(codes1[node], codes2[node]) for codes1, codes2 in solved]


class _GoldenRun:
    """Golden pass of one cell: responses plus reference resistances.

    Solves the stimulus set once and reads every requested output port
    out of the solved phases (each phase carries the codes of all nets),
    so multi-output cells pay a single pass.
    """

    def __init__(
        self,
        cell: CellNetlist,
        params: ElectricalParams,
        words: Sequence[Word],
        ports: Sequence[str],
        delay_detection: bool,
        topology: Optional[CellTopology] = None,
        batched: bool = True,
        plans: Optional[Sequence[WordPlan]] = None,
        sim: Optional[CellSimulator] = None,
    ) -> None:
        self.topology = topology or CellTopology(cell, params=params)
        self.plans = (
            plans
            if plans is not None
            else [split_word(w, cell.n_inputs, cell.name) for w in words]
        )
        if sim is None:
            # *sim* lets the cross-cell engine hand in the simulator whose
            # phases it already packed; counters must accrue on that object.
            sim = CellSimulator(
                cell, params=params, topology=self.topology, batched=batched
            )
        solved = sim.solve_words(words, self.plans)
        self.golden: Dict[str, List[V4]] = {}
        self.transition_cols: Dict[str, List[int]] = {}
        self.resistance: Dict[str, Dict[int, float]] = {}
        for port in ports:
            responses = _port_responses(solved, sim.graph.net_index[port])
            self.golden[port] = responses
            cols = [
                col for col, response in enumerate(responses)
                if response.is_dynamic
            ]
            self.transition_cols[port] = cols
            if delay_detection:
                self.resistance[port] = {
                    col: sim.output_drive_resistance(words[col], output=port)
                    for col in cols
                }
        self.solve_count = sim.solve_count
        self.cache_hit_count = sim.cache_hit_count
        self.batched_count = sim.batched_count


def _prepare_defect_rows(
    cell: CellNetlist,
    params: ElectricalParams,
    defects: Sequence[Defect],
    topology: CellTopology,
    batched: bool,
) -> List[Tuple[DefectEffect, Optional[CellSimulator]]]:
    """Materialize every defect's (effect, simulator) row in defect order.

    Benign / golden-equivalent defects carry no simulator; the rest get
    the simulator the detection loop would have built, so the packed
    planner can see the whole slice's phase demand up front.
    """
    rows: List[Tuple[DefectEffect, Optional[CellSimulator]]] = []
    for defect in defects:
        effect = defect.effect(cell, params.short_resistance)
        if effect.benign or effect.is_golden:
            rows.append((effect, None))
        else:
            rows.append(
                (
                    effect,
                    CellSimulator(
                        cell, params=params, effect=effect,
                        topology=topology, batched=batched,
                    ),
                )
            )
    return rows


def _simulate_defect_rows(
    cell: CellNetlist,
    params: ElectricalParams,
    words: Sequence[Word],
    ports: Sequence[str],
    defects: Sequence[Defect],
    golden_run: _GoldenRun,
    delay_detection: bool,
    slow_factor: float,
    keep_responses: bool,
    progress: Optional[Callable[[int, int], None]] = None,
    progress_offset: int = 0,
    progress_total: Optional[int] = None,
    batched: bool = True,
    packed: bool = False,
    prepared_rows: Optional[
        List[Tuple[DefectEffect, Optional[CellSimulator]]]
    ] = None,
) -> Tuple[
    Dict[str, np.ndarray],
    Optional[Dict[str, List[List[V4]]]],
    Dict[str, int],
]:
    """Characterize a contiguous slice of the defect universe.

    This is the kernel both the serial path and every pool worker run;
    determinism (fixed defect order, identity-based V4 comparison against
    a locally computed golden pass) guarantees the parallel merge is
    byte-identical to the serial table.  Each defect is simulated once
    and every output port's detection row is read from the same solved
    phases.

    With ``packed=True`` the slice's phase demand is planned up front and
    solved through the cross-topology packed kernel
    (:func:`~repro.simulation.engine.solve_words_across` with
    ``assemble=False``); the per-defect loop below then assembles from
    the staged results with unchanged order and cost accounting.
    *prepared_rows* lets a caller that already packed a larger scope
    (the cross-cell library engine) hand in the materialized rows.
    """
    topology = golden_run.topology
    total = progress_total if progress_total is not None else len(defects)

    if prepared_rows is None and packed and batched:
        prepared_rows = _prepare_defect_rows(
            cell, params, defects, topology, batched
        )
        solve_words_across(
            [
                (sim, words, golden_run.plans)
                for _effect, sim in prepared_rows
                if sim is not None
            ],
            assemble=False,
        )

    detection = {
        port: np.zeros((len(defects), len(words)), dtype=np.int8)
        for port in ports
    }
    responses: Optional[Dict[str, List[List[V4]]]] = (
        {port: [] for port in ports} if keep_responses else None
    )
    counters = {
        "simulated": 0, "skipped": 0, "solves": 0, "cache_hits": 0,
        "batched": 0,
    }

    for row, defect in enumerate(defects):
        if prepared_rows is not None:
            effect, prepared_sim = prepared_rows[row]
        else:
            effect = defect.effect(cell, params.short_resistance)
            prepared_sim = None
        if effect.benign or effect.is_golden:
            counters["skipped"] += 1
            if responses is not None:
                for port in ports:
                    responses[port].append(list(golden_run.golden[port]))
        else:
            sim = prepared_sim if prepared_sim is not None else CellSimulator(
                cell, params=params, effect=effect, topology=topology,
                batched=batched,
            )
            solved = sim.solve_words(words, golden_run.plans)
            for port in ports:
                golden = golden_run.golden[port]
                row_responses = _port_responses(
                    solved, sim.graph.net_index[port]
                )
                block = detection[port]
                for col, response in enumerate(row_responses):
                    block[row, col] = detect(golden[col], response)
                if delay_detection:
                    for col in golden_run.transition_cols[port]:
                        if block[row, col] or row_responses[col] is not golden[col]:
                            continue
                        reference = golden_run.resistance[port][col]
                        measured = sim.output_drive_resistance(
                            words[col], output=port
                        )
                        if measured > slow_factor * reference:
                            block[row, col] = 1
                if responses is not None:
                    responses[port].append(row_responses)
            counters["simulated"] += 1
            sim_counters = sim.counters()
            counters["solves"] += sim_counters["solves"]
            counters["cache_hits"] += sim_counters["cache_hits"]
            counters["batched"] += sim_counters["batched"]
        if progress is not None:
            progress(progress_offset + row + 1, total)

    return detection, responses, counters


def _defect_chunk_worker(payload: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Pool worker: rebuild the cell, redo the golden pass, run one chunk.

    The golden pass is recomputed per worker (cheap relative to a chunk)
    so every ``detect`` comparison happens against locally materialized
    V4 singletons; only the small (index, detection block, counters,
    spans) result crosses the pipe back.  The worker runs under a fresh
    obs scope — the forked copy of the parent tracer is never written —
    and exports its span buffer for the parent to re-parent and merge.
    """
    (
        index,
        cell_text,
        technology,
        params,
        policy,
        ports,
        defects,
        delay_detection,
        slow_factor,
        keep_responses,
        trace_enabled,
        batched,
        packed,
        phase_cache,
    ) = payload

    worker_tracer = obs.Tracer(enabled=trace_enabled)
    with obs.scoped(
        tracer=worker_tracer,
        metrics=obs.Metrics(),
        events=obs.EventLog(obs.NullSink()),
    ):
        with worker_tracer.span(
            "generate.chunk", chunk=index, defects=len(defects)
        ):
            # Plan-once / replay-many: repeated chunks (and retried
            # attempts) of one cell in the same worker process reuse the
            # parsed netlist, the stimulus plans and the topology instead
            # of rebuilding them per payload.
            store_ = plan_store()
            cell = store_.cell(cell_text, technology)
            words, plans = store_.stimulus_plan(cell.n_inputs, policy)
            topology = store_.topology(cell, params)
            phase_store = attach_store(topology, phase_cache)
            with worker_tracer.span("generate.golden", chunk=index):
                golden_run = _GoldenRun(
                    cell, params, words, ports, delay_detection,
                    topology=topology, batched=batched, plans=plans,
                )
            detection, responses, counters = _simulate_defect_rows(
                cell,
                params,
                words,
                ports,
                defects,
                golden_run,
                delay_detection,
                slow_factor,
                keep_responses,
                batched=batched,
                packed=packed,
            )
            if phase_store is not None:
                phase_store.save(topology)
    # The duplicated golden pass is pool overhead, not simulation work the
    # serial flow would have paid; account it separately.
    counters["golden_solves"] = golden_run.solve_count
    counters["golden_batched"] = golden_run.batched_count
    return index, detection, responses, counters, worker_tracer.export()


def _effective_workers(parallelism: Optional[int], n_defects: int) -> int:
    """Clamp the requested worker count to something that can pay off."""
    if parallelism is None or parallelism <= 1:
        return 1
    if multiprocessing.current_process().daemon:
        # Pool workers cannot fork children (cell-level fan-out already
        # claimed the process budget); fall back to the serial kernel.
        return 1
    if n_defects < 2 * MIN_DEFECTS_PER_WORKER:
        return 1
    return min(parallelism, max(1, n_defects // MIN_DEFECTS_PER_WORKER))


def _chunk_bounds(n_items: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Near-equal contiguous [start, stop) chunks preserving order."""
    base, extra = divmod(n_items, n_chunks)
    bounds = []
    start = 0
    for i in range(n_chunks):
        stop = start + base + (1 if i < extra else 0)
        if stop > start:
            bounds.append((start, stop))
        start = stop
    return bounds


def _generate(
    cell: CellNetlist,
    params: Optional[ElectricalParams],
    policy: str,
    universe: Optional[Sequence[Defect]],
    keep_responses: bool,
    delay_detection: bool,
    slow_factor: float,
    ports: Sequence[str],
    progress: Optional[Callable[[int, int], None]],
    parallelism: Optional[int],
    batched: bool,
    packed: bool = False,
    phase_cache: PhaseCacheArg = None,
) -> Dict[str, CAModel]:
    """Shared generation core: one sweep, one CAModel per requested port."""
    started = time.perf_counter()
    if params is None:
        params = _default_params(cell)
    for port in ports:
        if port not in cell.outputs:
            raise ValueError(f"{port!r} is not an output of {cell.name}")
    resolved = resolve_policy(cell.n_inputs, policy)
    words, plans = plan_store().stimulus_plan(cell.n_inputs, resolved)
    defects = list(universe) if universe is not None else default_universe(cell)

    # All cost accounting goes through the obs metrics registry; the stats
    # record attached to the model is derived from the registry delta at
    # the end (single source of truth, see GenerationStats.from_metrics).
    tracer = obs.tracer()
    registry = obs.metrics()
    checkpoint = registry.checkpoint()

    with tracer.span(
        "camodel.generate",
        cell=cell.name,
        policy=resolved,
        defects=len(defects),
        stimuli=len(words),
        outputs=len(ports),
    ) as generate_span:
        # Fault-injection seam: a scripted 'raise'-mode fault surfaces
        # here as an exception from inside generation (no-op when no
        # plan is armed; see repro.resilience.faults).
        _faults.fire(_faults.SITE_SOLVER, cell=cell.name)
        topology = plan_store().topology(cell, params)
        phase_store = attach_store(topology, phase_cache)
        with tracer.span("generate.golden", cell=cell.name):
            golden_run = _GoldenRun(
                cell, params, words, ports, delay_detection,
                topology=topology, batched=batched, plans=plans,
            )
        golden_seconds = time.perf_counter() - started
        registry.inc(M_GOLDEN_SECONDS, golden_seconds)

        workers = _effective_workers(parallelism, len(defects))
        defect_started = time.perf_counter()
        merge_seconds = 0.0

        if workers <= 1:
            with tracer.span("generate.defects", workers=1):
                detection, responses, counters = _simulate_defect_rows(
                    cell,
                    params,
                    words,
                    ports,
                    defects,
                    golden_run,
                    delay_detection,
                    slow_factor,
                    keep_responses,
                    progress=progress,
                    batched=batched,
                    packed=packed,
                )
            defect_seconds = time.perf_counter() - defect_started
            workers = 1
        else:
            from repro.spice.writer import write_cell

            cell_text = write_cell(cell)
            bounds = _chunk_bounds(len(defects), workers)
            payloads = [
                (
                    i,
                    cell_text,
                    cell.technology,
                    params,
                    resolved,
                    tuple(ports),
                    defects[start:stop],
                    delay_detection,
                    slow_factor,
                    keep_responses,
                    tracer.enabled,
                    batched,
                    packed,
                    str(phase_store.root) if phase_store is not None else None,
                )
                for i, (start, stop) in enumerate(bounds)
            ]
            blocks: List[Optional[Dict[str, np.ndarray]]] = [None] * len(bounds)
            chunk_responses: List[Optional[Dict[str, List[List[V4]]]]] = (
                [None] * len(bounds)
            )
            counters = {
                "simulated": 0, "skipped": 0, "solves": 0, "cache_hits": 0,
                "batched": 0,
            }
            done = 0
            with tracer.span(
                "generate.defects", workers=len(bounds)
            ) as defects_span:
                with multiprocessing.Pool(processes=len(bounds)) as pool:
                    for index, block, block_responses, chunk_counters, spans in (
                        pool.imap_unordered(_defect_chunk_worker, payloads)
                    ):
                        tracer.absorb(spans, parent_id=defects_span.span_id)
                        blocks[index] = block
                        chunk_responses[index] = block_responses
                        for key in (
                            "simulated", "skipped", "solves", "cache_hits",
                            "batched",
                        ):
                            counters[key] += chunk_counters[key]
                        counters["solves"] += chunk_counters.get("golden_solves", 0)
                        counters["batched"] += chunk_counters.get(
                            "golden_batched", 0
                        )
                        done += len(block[ports[0]])
                        if progress is not None:
                            progress(done, len(defects))
            defect_seconds = time.perf_counter() - defect_started
            merge_started = time.perf_counter()
            with tracer.span("generate.merge", chunks=len(bounds)):
                detection = {
                    port: np.vstack([chunk[port] for chunk in blocks])
                    for port in ports
                }
                if keep_responses:
                    responses = {
                        port: [
                            row for chunk in chunk_responses
                            for row in chunk[port]
                        ]
                        for port in ports
                    }
                else:
                    responses = None
            merge_seconds = time.perf_counter() - merge_started
            workers = len(bounds)

        registry.inc(M_DEFECT_SECONDS, defect_seconds)
        if merge_seconds:
            registry.inc(M_MERGE_SECONDS, merge_seconds)
        registry.inc(M_SIMULATED, counters["simulated"])
        registry.inc(M_SKIPPED, counters["skipped"])
        registry.inc(M_SOLVES, counters["solves"] + golden_run.solve_count)
        registry.inc(
            M_CACHE_HITS, counters["cache_hits"] + golden_run.cache_hit_count
        )
        registry.inc(M_BATCHED, counters["batched"] + golden_run.batched_count)

        # Same accounting formula as the serial flow (one golden pass plus one
        # full stimulus sweep per simulated defect), so serial and parallel
        # runs of the same cell report the same simulation_count.
        simulation_count = len(words) * (1 + counters["simulated"])
        total_seconds = time.perf_counter() - started
        registry.inc(M_TOTAL_SECONDS, total_seconds)
        # Histogram sample per finished cell: p50/p95/p99 across a
        # library run (counters only carry the sum).
        registry.observe(M_CELL_SECONDS, total_seconds)
        generate_span.set("workers", workers)
        generate_span.set("simulated_defects", counters["simulated"])
        stats = GenerationStats.from_metrics(
            registry.counter_delta(checkpoint), workers=workers
        )

    if phase_store is not None:
        # Persist what this run solved (pool workers saved their own
        # chunk phases already; merge-on-save makes the writers converge).
        phase_store.save(topology)

    # Every port's model carries a copy of the one shared run's stats:
    # the sweep ran once, so per-port cost attribution is not meaningful.
    return {
        port: CAModel(
            cell_name=cell.name,
            technology=cell.technology,
            inputs=tuple(cell.inputs),
            output=port,
            stimuli=words,
            golden=golden_run.golden[port],
            defects=defects,
            detection=detection[port],
            responses=responses[port] if responses is not None else None,
            simulation_count=simulation_count,
            generation_seconds=total_seconds,
            stats=GenerationStats.from_dict(stats.to_dict()),
        )
        for port in ports
    }


def generate_ca_model(
    cell: CellNetlist,
    params: Optional[ElectricalParams] = None,
    policy: str = "auto",
    universe: Optional[Sequence[Defect]] = None,
    keep_responses: bool = False,
    delay_detection: bool = True,
    slow_factor: float = DEFAULT_SLOW_FACTOR,
    output: Optional[str] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    parallelism: Optional[int] = None,
    batched: bool = True,
    packed: bool = False,
    phase_cache: PhaseCacheArg = None,
) -> CAModel:
    """Run the conventional generation flow for one cell.

    Parameters
    ----------
    params:
        Electrical parameters; defaults to the cell's technology if it
        names a registered one, else generic parameters.
    policy:
        Stimulus policy ('auto', 'exhaustive', 'adjacent', 'static').
    universe:
        Defect list; defaults to all intra-transistor opens and shorts.
    keep_responses:
        Also record the full defective response matrix (heavier; useful
        for analysis and examples).
    delay_detection:
        Also flag defects whose output transition is logically correct but
        driven through > *slow_factor* x the golden effective resistance
        (delay detection; catches single-finger opens in parallel stacks).
    output:
        Cell output to characterize (first output by default); use
        :func:`generate_multi` for all outputs of a multi-output cell.
    progress:
        Optional callback ``(done, total)`` per defect (per chunk when
        running in parallel).
    parallelism:
        Worker processes for the defect loop (``None``/``1`` = serial).
        The detection table is byte-identical to the serial run; small
        universes fall back to the serial kernel automatically.
    batched:
        Solve stimulus sets through the vectorized batch kernel
        (byte-identical results; ``False`` forces the scalar reference
        path, mainly useful for differential testing and benchmarks).
    packed:
        Plan the whole defect slice up front and solve it through the
        multi-topology packed kernel
        (:func:`~repro.simulation.packed.solve_packed`) instead of one
        batch call per defect.  Byte-identical results and cost
        accounting; requires ``batched`` (ignored on the scalar path).
    phase_cache:
        Directory (or
        :class:`~repro.simulation.phasecache.PhaseCacheStore`) persisting
        solved phases across runs.  Warm entries are served through the
        counter-neutral prefetch path, so results *and* stats stay
        byte-identical to a cold run; the store is updated after the
        sweep.
    """
    port = output or cell.outputs[0]
    models = _generate(
        cell,
        params,
        policy,
        universe,
        keep_responses,
        delay_detection,
        slow_factor,
        [port],
        progress,
        parallelism,
        batched,
        packed,
        phase_cache,
    )
    return models[port]


def generate_multi(
    cell: CellNetlist,
    params: Optional[ElectricalParams] = None,
    policy: str = "auto",
    universe: Optional[Sequence[Defect]] = None,
    keep_responses: bool = False,
    delay_detection: bool = True,
    slow_factor: float = DEFAULT_SLOW_FACTOR,
    progress: Optional[Callable[[int, int], None]] = None,
    parallelism: Optional[int] = None,
    batched: bool = True,
    packed: bool = False,
    phase_cache: PhaseCacheArg = None,
) -> Dict[str, CAModel]:
    """Characterize every output of a multi-output cell in one sweep.

    Industrial CA flows keep one detection table per output; this returns
    ``{output port: CAModel}``.  The cell's topology, golden pass and
    defect simulations run **once**: every solved phase carries the codes
    of all nets, so each port's detection table is read from the same
    sweep instead of re-simulating the universe per output.  Each model
    carries a copy of the shared run's stats.
    """
    return _generate(
        cell,
        params,
        policy,
        universe,
        keep_responses,
        delay_detection,
        slow_factor,
        list(cell.outputs),
        progress,
        parallelism,
        batched,
        packed,
        phase_cache,
    )


def _default_params(cell: CellNetlist) -> ElectricalParams:
    if cell.technology:
        try:
            return get_technology(cell.technology).electrical
        except KeyError:
            pass
    return ElectricalParams()
