"""Stimulus-set generation policies.

The CA-matrix rows are indexed by four-valued stimulus words (Section II.B).
Three policies are provided:

``static``
    the 2^n binary patterns only;
``exhaustive``
    all of {0,1,R,F}^n = 4^n words: 2^n static + 2^n*(2^n - 1) dynamic
    (every ordered pair of distinct binary patterns) — the paper's
    "all the possible input stimuli";
``adjacent``
    static patterns plus the n*2^n single-input transitions; this is the
    classic two-pattern transition set and is used by the scaled
    experiments for cells with many inputs, where 4^n is impractical.

Words are emitted in a canonical deterministic order: static words first in
ascending binary order, then dynamic words sorted by (initial pattern,
final pattern).
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Tuple

from repro.logic.fourval import V4, word_from_phases

Word = Tuple[V4, ...]

POLICIES = ("static", "adjacent", "exhaustive")


def static_words(n_inputs: int) -> List[Word]:
    """The 2^n static stimuli in ascending binary order."""
    out: List[Word] = []
    for bits in itertools.product((0, 1), repeat=n_inputs):
        out.append(word_from_phases(bits, bits))
    return out


def exhaustive_dynamic_words(n_inputs: int) -> List[Word]:
    """Every ordered pair of distinct binary patterns, as one word."""
    patterns = list(itertools.product((0, 1), repeat=n_inputs))
    out: List[Word] = []
    for initial in patterns:
        for final in patterns:
            if initial != final:
                out.append(word_from_phases(initial, final))
    return out


def adjacent_dynamic_words(n_inputs: int) -> List[Word]:
    """Pairs of patterns at Hamming distance one (single-input R/F)."""
    out: List[Word] = []
    for initial in itertools.product((0, 1), repeat=n_inputs):
        for position in range(n_inputs):
            final = list(initial)
            final[position] = 1 - final[position]
            out.append(word_from_phases(initial, tuple(final)))
    return out


def stimuli(n_inputs: int, policy: str = "exhaustive") -> List[Word]:
    """Full stimulus list for a cell with *n_inputs* pins."""
    if n_inputs < 1:
        raise ValueError("cell needs at least one input")
    if policy == "static":
        return static_words(n_inputs)
    if policy == "exhaustive":
        return static_words(n_inputs) + exhaustive_dynamic_words(n_inputs)
    if policy == "adjacent":
        return static_words(n_inputs) + adjacent_dynamic_words(n_inputs)
    raise ValueError(f"unknown stimulus policy {policy!r}; known: {POLICIES}")


def expected_count(n_inputs: int, policy: str = "exhaustive") -> int:
    """Closed-form stimulus count (cross-checked by tests)."""
    static = 2 ** n_inputs
    if policy == "static":
        return static
    if policy == "exhaustive":
        return static * static  # 2^n + 2^n(2^n - 1) = 4^n
    if policy == "adjacent":
        return static + n_inputs * static
    raise ValueError(f"unknown stimulus policy {policy!r}; known: {POLICIES}")


def is_dynamic_word(word: Sequence[V4]) -> bool:
    """True when the word carries at least one transition."""
    return any(v.is_dynamic for v in word)
