"""Cross-cell vectorized throughput engine for library characterization.

:func:`~repro.camodel.generate.generate_ca_model` already packs every
(defect, stimulus set) pair of **one** cell into a handful of vectorized
kernel calls.  At library scale that still leaves one golden batch and
one defect sweep per cell — for small cells the per-call NumPy overhead
dominates and throughput stops scaling.  :func:`run_throughput` lifts
the batching across the whole library: the pending phase batches of
*every* cell and *every* defect are packed into padded multi-topology
:func:`~repro.simulation.packed.solve_packed` kernel calls (windowed at
``max_rows``), while the per-cell golden assembly and detection loops —
the code that defines the semantics — run unchanged afterwards against
the staged results.

Identity guarantee: for every cell the produced :class:`CAModel` is
byte-identical (canonical form) to ``generate_ca_model(cell)``, counters
included.  The packed planner charges each simulator the same
solve/cache-hit/batched increments a per-cell sweep would have
(:func:`~repro.simulation.engine.solve_words_across`), and assembly runs
in cell-major, defect-minor order — the exact order of the sequential
library loop.

Failure containment matches :func:`repro.camodel.batch.generate_library`:
a failing cell never discards its completed siblings — the raised
:class:`~repro.camodel.batch.LibraryGenerationError` carries them as
``.completed``.
"""

from __future__ import annotations

import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.camodel.batch import (
    LibraryGenerationError,
    ensure_unique_cell_names,
)
from repro.camodel.generate import (
    DEFAULT_SLOW_FACTOR,
    PhaseCacheArg,
    _default_params,
    _GoldenRun,
    _prepare_defect_rows,
    _simulate_defect_rows,
    resolve_policy,
)
from repro.camodel.model import CAModel
from repro.camodel.planstore import plan_store
from repro.camodel.stats import (
    GenerationStats,
    M_BATCHED,
    M_CACHE_HITS,
    M_CELL_SECONDS,
    M_SIMULATED,
    M_SKIPPED,
    M_SOLVES,
    M_TOTAL_SECONDS,
)
from repro.defects.model import Defect
from repro.defects.universe import default_universe
from repro.library.technology import ElectricalParams
from repro.resilience import faults as _faults
from repro.simulation.engine import CellSimulator, solve_words_across
from repro.simulation.phasecache import attach_store
from repro.spice.netlist import CellNetlist

#: obs metric name (registered in repro.lint.catalog)
M_THROUGHPUT_CELLS = "throughput.cells"


class _CellRun:
    """Per-cell working state threaded through the packed phases."""

    __slots__ = (
        "cell", "params", "words", "plans", "defects", "topology",
        "store", "golden_sim", "golden_run", "rows", "started",
    )

    def __init__(self, cell, params, words, plans, defects, topology, store):
        self.cell = cell
        self.params = params
        self.words = words
        self.plans = plans
        self.defects = defects
        self.topology = topology
        self.store = store
        self.golden_sim: Optional[CellSimulator] = None
        self.golden_run: Optional[_GoldenRun] = None
        self.rows = None
        self.started = time.perf_counter()


def run_throughput(
    cells: Sequence[CellNetlist],
    policy: str = "auto",
    params: Optional[ElectricalParams] = None,
    universe: Optional[Sequence[Defect]] = None,
    keep_responses: bool = False,
    delay_detection: bool = True,
    slow_factor: float = DEFAULT_SLOW_FACTOR,
    phase_cache: PhaseCacheArg = None,
    max_rows: int = 4096,
    progress: Optional[Callable[[int, int], None]] = None,
) -> Dict[str, CAModel]:
    """Characterize a whole library through the cross-cell packed kernel.

    Returns ``{cell name: CAModel}`` with every model byte-identical
    (canonical form, counters included) to a per-cell
    ``generate_ca_model(cell, ...)`` run with the same options.  Options
    mirror :func:`~repro.camodel.generate.generate_ca_model`; see there
    for *phase_cache* (per-cell stores are saved as each cell finishes).

    Seconds attribution is engine-level: the packed kernel solves many
    cells' phases in one call, so per-cell wall-clock fields measure the
    cell's start-to-finish span inside the engine (overlapping across
    cells) — canonical artifact comparison zeroes them anyway.
    """
    names = [cell.name for cell in cells]
    ensure_unique_cell_names(names)

    tracer = obs.tracer()
    registry = obs.metrics()
    out: Dict[str, CAModel] = {}
    failures: List[Dict[str, str]] = []

    def fail(cell: CellNetlist, exc: Exception) -> None:
        failures.append(
            {
                "cell": cell.name,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }
        )

    with tracer.span("camodel.throughput", cells=len(cells)):
        # Phase 1 — per-cell setup: plans, topology, golden simulator.
        runs: List[_CellRun] = []
        for cell in cells:
            try:
                _faults.fire(_faults.SITE_SOLVER, cell=cell.name)
                cell_params = params if params is not None else _default_params(cell)
                resolved = resolve_policy(cell.n_inputs, policy)
                words, plans = plan_store().stimulus_plan(
                    cell.n_inputs, resolved
                )
                defects = (
                    list(universe)
                    if universe is not None
                    else default_universe(cell)
                )
                topology = plan_store().topology(cell, cell_params)
                store = attach_store(topology, phase_cache)
                run = _CellRun(
                    cell, cell_params, words, plans, defects, topology, store
                )
                run.golden_sim = CellSimulator(
                    cell, params=cell_params, topology=topology, batched=True
                )
                runs.append(run)
            except Exception as exc:  # noqa: BLE001 - collected below
                fail(cell, exc)

        # Phase 2 — pack every cell's golden phases into shared kernel
        # calls; assembly happens inside each _GoldenRun below.
        solve_words_across(
            [(run.golden_sim, run.words, run.plans) for run in runs],
            max_rows=max_rows,
            assemble=False,
        )
        survivors: List[_CellRun] = []
        for run in runs:
            try:
                run.golden_run = _GoldenRun(
                    run.cell,
                    run.params,
                    run.words,
                    [run.cell.outputs[0]],
                    delay_detection,
                    topology=run.topology,
                    batched=True,
                    plans=run.plans,
                    sim=run.golden_sim,
                )
                run.rows = _prepare_defect_rows(
                    run.cell, run.params, run.defects, run.topology, True
                )
                survivors.append(run)
            except Exception as exc:  # noqa: BLE001 - collected below
                fail(run.cell, exc)

        # Phase 3 — pack every surviving cell's defect phases, cell-major
        # defect-minor (the sequential library order).
        solve_words_across(
            [
                (sim, run.words, run.golden_run.plans)
                for run in survivors
                for _effect, sim in run.rows
                if sim is not None
            ],
            max_rows=max_rows,
            assemble=False,
        )

        # Phase 4 — per-cell assembly: detection tables, stats, model.
        done = 0
        for run in survivors:
            port = run.cell.outputs[0]
            try:
                detection, responses, counters = _simulate_defect_rows(
                    run.cell,
                    run.params,
                    run.words,
                    [port],
                    run.defects,
                    run.golden_run,
                    delay_detection,
                    slow_factor,
                    keep_responses,
                    batched=True,
                    packed=True,
                    prepared_rows=run.rows,
                )
                golden = run.golden_run
                cell_seconds = time.perf_counter() - run.started
                delta = {
                    M_SOLVES: counters["solves"] + golden.solve_count,
                    M_CACHE_HITS: (
                        counters["cache_hits"] + golden.cache_hit_count
                    ),
                    M_BATCHED: counters["batched"] + golden.batched_count,
                    M_SIMULATED: counters["simulated"],
                    M_SKIPPED: counters["skipped"],
                    M_TOTAL_SECONDS: cell_seconds,
                }
                for key, value in delta.items():
                    registry.inc(key, value)
                registry.observe(M_CELL_SECONDS, cell_seconds)
                stats = GenerationStats.from_metrics(delta, workers=1)
                out[run.cell.name] = CAModel(
                    cell_name=run.cell.name,
                    technology=run.cell.technology,
                    inputs=tuple(run.cell.inputs),
                    output=port,
                    stimuli=run.words,
                    golden=golden.golden[port],
                    defects=run.defects,
                    detection=detection[port],
                    responses=(
                        responses[port] if responses is not None else None
                    ),
                    simulation_count=(
                        len(run.words) * (1 + counters["simulated"])
                    ),
                    generation_seconds=cell_seconds,
                    stats=stats,
                )
                if run.store is not None:
                    run.store.save(run.topology)
            except Exception as exc:  # noqa: BLE001 - collected below
                fail(run.cell, exc)
            done += 1
            if progress is not None:
                progress(done, len(survivors))
        registry.inc(M_THROUGHPUT_CELLS, len(out))

    if failures:
        raise LibraryGenerationError(failures, completed=out)
    return out
