"""Parallel library characterization.

The conventional flow is embarrassingly parallel over cells ("CPU
requirements" are one of the costs the paper lists).  This module fans
:func:`~repro.camodel.generate.generate_ca_model` out over a process pool;
cells are rebuilt inside the workers from (technology, cell name) so only
small payloads cross the pipe.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.camodel.generate import generate_ca_model
from repro.camodel.io import model_from_dict, model_to_dict
from repro.camodel.model import CAModel
from repro.spice.netlist import CellNetlist
from repro.spice.writer import write_cell


def _characterize_worker(payload: Tuple[str, str, str]) -> Tuple[str, Dict]:
    """Worker: parse the cell text, generate, return a serialized model."""
    cell_text, technology, policy = payload
    from repro.spice.parser import parse_cell

    cell = parse_cell(cell_text, technology=technology)
    model = generate_ca_model(cell, policy=policy)
    return cell.name, model_to_dict(model)


def generate_library(
    cells: Sequence[CellNetlist],
    policy: str = "auto",
    processes: Optional[int] = None,
    chunksize: int = 1,
) -> Dict[str, CAModel]:
    """Characterize many cells, optionally in parallel.

    ``processes=None`` or ``1`` runs inline (deterministic order, easier
    debugging); otherwise a ``multiprocessing`` pool is used.  Returns
    ``{cell name: CAModel}``.
    """
    if processes is None or processes <= 1:
        return {
            cell.name: generate_ca_model(cell, policy=policy) for cell in cells
        }

    payloads = [
        (write_cell(cell), cell.technology, policy) for cell in cells
    ]
    out: Dict[str, CAModel] = {}
    with multiprocessing.Pool(processes=processes) as pool:
        for name, data in pool.imap_unordered(
            _characterize_worker, payloads, chunksize=chunksize
        ):
            out[name] = model_from_dict(data)
    return out
