"""Parallel library characterization.

The conventional flow is embarrassingly parallel over cells ("CPU
requirements" are one of the costs the paper lists).  This module fans
:func:`~repro.camodel.generate.generate_ca_model` out over a process pool;
cells are rebuilt inside the workers from (technology, cell name) so only
small payloads cross the pipe.

Generation options (``params``, ``universe``, ``delay_detection``,
``slow_factor``) are forwarded through the worker payload, so the pooled
path produces models identical to the inline path.  For the
complementary *defect-level* fan-out (one large cell saturating all
cores), see the ``parallelism`` knob of
:func:`~repro.camodel.generate.generate_ca_model` — the two are
alternatives: pool workers are daemonic and run the defect loop serially.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, Optional, Sequence, Tuple

from repro import obs
from repro.camodel.generate import DEFAULT_SLOW_FACTOR, generate_ca_model
from repro.camodel.io import model_from_dict, model_to_dict
from repro.camodel.model import CAModel
from repro.defects.model import Defect
from repro.library.technology import ElectricalParams
from repro.spice.netlist import CellNetlist
from repro.spice.writer import write_cell


def _characterize_worker(payload):
    """Worker: parse the cell text, generate, return a serialized model.

    Runs under a fresh obs scope: the span buffer and metric snapshot ride
    back with the model so the parent can merge them into one coherent
    run-level trace and registry.
    """
    cell_text, technology, policy, kwargs, trace_enabled = payload
    from repro.spice.parser import parse_cell

    worker_tracer = obs.Tracer(enabled=trace_enabled)
    worker_metrics = obs.Metrics()
    with obs.scoped(
        tracer=worker_tracer,
        metrics=worker_metrics,
        events=obs.EventLog(obs.NullSink()),
    ):
        cell = parse_cell(cell_text, technology=technology)
        model = generate_ca_model(cell, policy=policy, **kwargs)
    return (
        cell.name,
        model_to_dict(model),
        worker_tracer.export(),
        worker_metrics.snapshot(),
    )


def generate_library(
    cells: Sequence[CellNetlist],
    policy: str = "auto",
    processes: Optional[int] = None,
    chunksize: int = 1,
    params: Optional[ElectricalParams] = None,
    universe: Optional[Sequence[Defect]] = None,
    delay_detection: bool = True,
    slow_factor: float = DEFAULT_SLOW_FACTOR,
    parallelism: Optional[int] = None,
    batched: bool = True,
) -> Dict[str, CAModel]:
    """Characterize many cells, optionally in parallel.

    ``processes=None`` or ``1`` runs inline (deterministic order, easier
    debugging); otherwise a ``multiprocessing`` pool is used.  All
    generation options are honored by both paths, so ``processes=4``
    returns the same models as ``processes=1``.  ``parallelism`` is the
    defect-level worker count forwarded to
    :func:`~repro.camodel.generate.generate_ca_model`; it only takes
    effect on the inline path (pool workers cannot fork further).
    Returns ``{cell name: CAModel}``; duplicate cell names are an error
    (the later model would silently shadow the earlier one).
    """
    names = [cell.name for cell in cells]
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        raise ValueError(
            f"duplicate cell names in library: {', '.join(duplicates)}"
        )

    kwargs = dict(
        params=params,
        universe=universe,
        delay_detection=delay_detection,
        slow_factor=slow_factor,
        batched=batched,
    )
    tracer = obs.tracer()
    registry = obs.metrics()
    if processes is None or processes <= 1:
        with tracer.span(
            "camodel.generate_library", cells=len(cells), processes=1
        ):
            return {
                cell.name: generate_ca_model(
                    cell, policy=policy, parallelism=parallelism, **kwargs
                )
                for cell in cells
            }

    payloads = [
        (write_cell(cell), cell.technology, policy, kwargs, tracer.enabled)
        for cell in cells
    ]
    out: Dict[str, CAModel] = {}
    with tracer.span(
        "camodel.generate_library", cells=len(cells), processes=processes
    ) as library_span:
        with multiprocessing.Pool(processes=processes) as pool:
            for name, data, spans, metric_snapshot in pool.imap_unordered(
                _characterize_worker, payloads, chunksize=chunksize
            ):
                tracer.absorb(spans, parent_id=library_span.span_id)
                registry.merge(metric_snapshot)
                out[name] = model_from_dict(data)
    return out
