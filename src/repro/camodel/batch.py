"""Parallel library characterization.

The conventional flow is embarrassingly parallel over cells ("CPU
requirements" are one of the costs the paper lists).  This module fans
:func:`~repro.camodel.generate.generate_ca_model` out over a process pool;
cells are rebuilt inside the workers from (technology, cell name) so only
small payloads cross the pipe.

Generation options (``params``, ``universe``, ``delay_detection``,
``slow_factor``) are forwarded through the worker payload, so the pooled
path produces models identical to the inline path.  For the
complementary *defect-level* fan-out (one large cell saturating all
cores), see the ``parallelism`` knob of
:func:`~repro.camodel.generate.generate_ca_model` — the two are
alternatives: pool workers are daemonic and run the defect loop serially.
"""

from __future__ import annotations

import multiprocessing
import traceback
from collections import Counter
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.camodel.generate import (
    DEFAULT_SLOW_FACTOR,
    PhaseCacheArg,
    generate_ca_model,
)
from repro.camodel.io import model_from_dict, model_to_dict
from repro.camodel.model import CAModel
from repro.camodel.planstore import plan_store
from repro.defects.model import Defect
from repro.library.technology import ElectricalParams
from repro.resilience.faults import FaultPlan
from repro.spice.netlist import CellNetlist
from repro.spice.writer import write_cell


def ensure_unique_cell_names(names: Sequence[str]) -> None:
    """Reject duplicate cell names in one counting pass.

    A later model would silently shadow the earlier one in the returned
    ``{name: model}`` dict, so every library path treats duplicates as an
    error.  Shared by the inline/pooled paths here, the cross-cell
    throughput engine and the resilient runner (the old per-path
    ``names.count(n)`` guards were O(n^2) over large libraries).
    """
    duplicates = sorted(
        name for name, count in Counter(names).items() if count > 1
    )
    if duplicates:
        raise ValueError(
            f"duplicate cell names in library: {', '.join(duplicates)}"
        )


class LibraryGenerationError(RuntimeError):
    """One or more cells failed; every completed sibling is attached.

    ``completed`` holds the models of every cell that finished before
    (or while) the failures happened, so a caller can keep partial
    results instead of losing the whole run; ``failures`` is a list of
    ``{"cell", "error", "traceback"}`` records.  For retry / quarantine
    / resume semantics on top of this, use the run-dir path
    (``run_dir=...`` or :func:`repro.resilience.run_library`).
    """

    def __init__(
        self,
        failures: List[Dict[str, str]],
        completed: Dict[str, CAModel],
    ) -> None:
        self.failures = failures
        self.completed = completed
        names = ", ".join(sorted(f["cell"] for f in failures))
        super().__init__(
            f"{len(failures)} cell(s) failed during library generation "
            f"({names}); {len(completed)} completed model(s) attached as "
            ".completed"
        )


def _characterize_worker(payload: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Worker: parse the cell text, generate, return a serialized model.

    Runs under a fresh obs scope: the span buffer and metric snapshot ride
    back with the model so the parent can merge them into one coherent
    run-level trace and registry — on the error path too, so the work a
    failing cell did before dying (solver spans, cache counters) is not
    silently dropped from the run-level accounting.  Exceptions are
    returned as structured error tuples instead of propagating, so one
    bad cell cannot discard the pool's completed siblings.
    """
    name, cell_text, technology, policy, kwargs, trace_enabled = payload

    worker_tracer = obs.Tracer(enabled=trace_enabled)
    worker_metrics = obs.Metrics()
    try:
        with obs.scoped(
            tracer=worker_tracer,
            metrics=worker_metrics,
            events=obs.EventLog(obs.NullSink()),
        ):
            # Plan-once / replay-many: repeated payloads of one cell in
            # this worker process reuse the parsed netlist.
            cell = plan_store().cell(cell_text, technology)
            model = generate_ca_model(cell, policy=policy, **kwargs)
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        return (
            "error",
            name,
            f"{type(exc).__name__}: {exc}",
            traceback.format_exc(),
            worker_tracer.export(),
            worker_metrics.snapshot(),
        )
    return (
        "ok",
        cell.name,
        model_to_dict(model),
        worker_tracer.export(),
        worker_metrics.snapshot(),
    )


def generate_library(
    cells: Sequence[CellNetlist],
    policy: str = "auto",
    processes: Optional[int] = None,
    chunksize: int = 1,
    params: Optional[ElectricalParams] = None,
    universe: Optional[Sequence[Defect]] = None,
    delay_detection: bool = True,
    slow_factor: float = DEFAULT_SLOW_FACTOR,
    parallelism: Optional[int] = None,
    batched: bool = True,
    packed: bool = False,
    phase_cache: PhaseCacheArg = None,
    run_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    retries: int = 1,
    cell_timeout: Optional[float] = None,
    retry_backoff: float = 0.1,
    fault_plan: Optional[FaultPlan] = None,
    output: Optional[Union[str, Path]] = None,
    workers: Optional[int] = None,
) -> Dict[str, CAModel]:
    """Characterize many cells, optionally in parallel.

    ``processes=None`` or ``1`` runs inline (deterministic order, easier
    debugging); otherwise a ``multiprocessing`` pool is used.  All
    generation options are honored by both paths, so ``processes=4``
    returns the same models as ``processes=1``.  ``parallelism`` is the
    defect-level worker count forwarded to
    :func:`~repro.camodel.generate.generate_ca_model`; it only takes
    effect on the inline path (pool workers cannot fork further).
    Returns ``{cell name: CAModel}``; duplicate cell names are an error
    (the later model would silently shadow the earlier one).

    If any cell fails, the completed siblings are never discarded: the
    raised :class:`LibraryGenerationError` carries them as
    ``.completed``.  Passing ``run_dir`` switches to the checkpointed
    resilient runner (:func:`repro.resilience.run_library`): per-cell
    state and model artifacts persist to the directory, ``resume=True``
    continues a killed run, and failures are retried (``retries``,
    ``cell_timeout``, ``retry_backoff``) then quarantined — the dict
    returned is then the (possibly partial) set of completed models.
    ``fault_plan`` and ``output`` are likewise run-dir options, forwarded
    verbatim; passing any run-dir-only option *without* ``run_dir`` is an
    error (it used to be silently ignored).  ``workers`` (also run-dir
    only) routes through the leased coordinator/worker service instead
    (:mod:`repro.service`): ``workers=N`` submits the job and spawns N
    stateless worker processes coordinating purely through the run
    directory — models, ``failures.json`` and ``metrics_total()`` stay
    byte-identical to the sequential runner's.

    ``packed=True`` solves through the cross-topology packed kernel: the
    inline path routes whole libraries through
    :func:`~repro.camodel.throughput.run_throughput` (every cell's phases
    share kernel calls), the pooled paths pack each worker's defect
    slice.  ``phase_cache`` persists solved phases across runs (see
    :func:`~repro.camodel.generate.generate_ca_model`).  Both knobs are
    identity-preserving: models are byte-identical either way.
    """
    if run_dir is None:
        rundir_only = {
            "resume": (resume, False),
            "retries": (retries, 1),
            "cell_timeout": (cell_timeout, None),
            "retry_backoff": (retry_backoff, 0.1),
            "fault_plan": (fault_plan, None),
            "output": (output, None),
            "workers": (workers, None),
        }
        offending = sorted(
            option
            for option, (value, default) in rundir_only.items()
            if value != default
        )
        if offending:
            raise ValueError(
                f"{', '.join(offending)} require(s) run_dir=... — these "
                "options only apply to the checkpointed resilient runner"
            )
    elif workers is not None:
        # Leased coordinator/worker service: N stateless worker processes
        # drain the run directory, one coordinator owns the ledger.
        # Byte-identical to the run_library path below (the chaos suite
        # enforces it); cell_timeout is a sequential-runner-only knob.
        if cell_timeout is not None:
            raise ValueError(
                "cell_timeout is not supported by the worker service "
                "(leases have no per-cell wall clock); use processes=... "
                "instead of workers=..."
            )
        from repro.service import serve, submit_library

        submit_library(
            cells,
            run_dir=run_dir,
            policy=policy,
            resume=resume,
            retries=retries,
            fault_plan=fault_plan,
            params=params,
            universe=universe,
            delay_detection=delay_detection,
            slow_factor=slow_factor,
            parallelism=parallelism,
            batched=batched,
            packed=packed,
            phase_cache=phase_cache,
        )
        return serve(
            run_dir, workers=workers, resume=resume, output=output
        ).models
    else:
        from repro.resilience.runner import run_library

        result = run_library(
            cells,
            run_dir=run_dir,
            policy=policy,
            processes=processes,
            resume=resume,
            retries=retries,
            cell_timeout=cell_timeout,
            retry_backoff=retry_backoff,
            fault_plan=fault_plan,
            params=params,
            universe=universe,
            delay_detection=delay_detection,
            slow_factor=slow_factor,
            parallelism=parallelism,
            batched=batched,
            packed=packed,
            phase_cache=phase_cache,
            output=output,
        )
        return result.models

    ensure_unique_cell_names([cell.name for cell in cells])

    kwargs = dict(
        params=params,
        universe=universe,
        delay_detection=delay_detection,
        slow_factor=slow_factor,
        batched=batched,
        packed=packed,
        phase_cache=phase_cache,
    )
    tracer = obs.tracer()
    registry = obs.metrics()
    out: Dict[str, CAModel] = {}
    failures: List[Dict[str, str]] = []
    if processes is None or processes <= 1:
        if packed and batched and (parallelism is None or parallelism <= 1):
            # Whole-library cross-cell packing: every cell's phase
            # batches share kernel calls (byte-identical models).
            from repro.camodel.throughput import run_throughput

            with tracer.span(
                "camodel.generate_library", cells=len(cells), processes=1
            ):
                return run_throughput(
                    cells,
                    policy=policy,
                    params=params,
                    universe=universe,
                    delay_detection=delay_detection,
                    slow_factor=slow_factor,
                    phase_cache=phase_cache,
                )
        with tracer.span(
            "camodel.generate_library", cells=len(cells), processes=1
        ):
            for cell in cells:
                try:
                    out[cell.name] = generate_ca_model(
                        cell, policy=policy, parallelism=parallelism, **kwargs
                    )
                except Exception as exc:  # noqa: BLE001 - collected below
                    failures.append(
                        {
                            "cell": cell.name,
                            "error": f"{type(exc).__name__}: {exc}",
                            "traceback": traceback.format_exc(),
                        }
                    )
        if failures:
            raise LibraryGenerationError(failures, completed=out)
        return out

    payloads = [
        (
            cell.name,
            write_cell(cell),
            cell.technology,
            policy,
            kwargs,
            tracer.enabled,
        )
        for cell in cells
    ]
    with tracer.span(
        "camodel.generate_library", cells=len(cells), processes=processes
    ) as library_span:
        with multiprocessing.Pool(processes=processes) as pool:
            for item in pool.imap_unordered(
                _characterize_worker, payloads, chunksize=chunksize
            ):
                if item[0] == "error":
                    _, name, error, tb, spans, metric_snapshot = item
                    # The failing worker's partial work still happened:
                    # absorb its spans and counters like a success.
                    tracer.absorb(spans, parent_id=library_span.span_id)
                    registry.merge(metric_snapshot)
                    failures.append(
                        {"cell": name, "error": error, "traceback": tb}
                    )
                    continue
                _, name, data, spans, metric_snapshot = item
                tracer.absorb(spans, parent_id=library_span.span_id)
                registry.merge(metric_snapshot)
                out[name] = model_from_dict(data)
    if failures:
        raise LibraryGenerationError(failures, completed=out)
    return out
