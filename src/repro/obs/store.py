"""Durable run-directory telemetry: per-attempt shards + merged reader.

The in-process :mod:`repro.obs` state (tracer / metrics / events)
evaporates when a worker exits, so a finished library run used to leave
no queryable record of where its time went.  This module makes the
``run_dir`` of a resilient run (:func:`repro.resilience.runner.run_library`)
an *observability* substrate as well as a coordination one::

    run-dir/
      obs/
        <cell>-<key>.a<NNN>.json   # one shard per worker attempt
        session-<NNN>.json         # one shard per parent session

Attempt shards are **content-keyed consistent with the ledger**: the
``<key>`` is the same :func:`repro.resilience.ledger.content_key` the
artifact uses, and ``<NNN>`` is the *lifetime* attempt index the ledger
hands out (it persists across resumed sessions), so a killed-and-resumed
run can never collide with — or double-write — a shard a previous
session already produced.  Every shard is written atomically (temp file
+ ``os.replace``), so a SIGKILL mid-write never leaves a torn shard.

An attempt shard carries everything one worker attempt observed: its
span buffer, metric counters, buffered events, wall-clock window and
outcome.  A session shard carries the parent side: the parent-process
spans of that session, parent-only counters (worker counters are
excluded — the ledger is their single source of truth, merged exactly
once per ``done`` cell), and the parent's event stream.

:class:`RunTelemetry` is the merged read side: it joins the ledger with
every shard into one run view — winning attempts per done cell, a
whole-run multi-process span list, and counter reconciliation against
:meth:`~repro.resilience.ledger.RunLedger.metrics_total`.  Chrome-trace
export embeds the canonical span list under the ``reproSpans`` key
(viewers ignore unknown keys), which is what makes ``export → load →
re-export`` byte-identical: microsecond float conversion never has to
round-trip.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs.trace import chrome_payload

OBS_FORMAT = 1

# obs metric/event names (registered in repro.lint.catalog)
M_SHARDS_WRITTEN = "obs.shards_written"
M_SHARDS_READ = "obs.shards_read"
E_SHARD_CORRUPT = "obs.shard_corrupt"

#: outcome values an attempt shard may carry (``ok`` plus the failure
#: kinds the runner classifies)
OUTCOMES = ("ok", "exception", "crash", "timeout", "corrupt-artifact")


def _atomic_write(path: Path, payload: Mapping[str, object]) -> None:
    # Same temp-file + os.replace discipline as the ledger; local copy
    # because repro.obs must not import repro.camodel (dependency
    # direction: everything imports obs).
    tmp = path.parent / f".{path.name}.tmp{os.getpid()}"
    tmp.write_text(json.dumps(payload, sort_keys=True, default=str))
    os.replace(tmp, path)


def attempt_shard_name(cell: str, key: str, attempt: int) -> str:
    """Shard filename for one (cell, content key, lifetime attempt)."""
    return f"{cell}-{key}.a{attempt:03d}.json"


def write_attempt_shard(
    path: Union[str, Path],
    *,
    cell: str,
    key: str,
    attempt: int,
    outcome: str,
    pid: int,
    started: float,
    seconds: float,
    counters: Mapping[str, float],
    spans: Sequence[Mapping[str, object]],
    events: Sequence[Mapping[str, object]],
    error: Optional[str] = None,
) -> Path:
    """Atomically persist one attempt's telemetry (worker or parent side).

    Module-level (not a method) so workers need only the path string from
    their payload — no store object crosses the process boundary.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write(
        path,
        {
            "format": OBS_FORMAT,
            "kind": "attempt",
            "cell": cell,
            "key": key,
            "attempt": int(attempt),
            "outcome": outcome,
            "pid": int(pid),
            "started": float(started),
            "seconds": float(seconds),
            "counters": dict(counters),
            "spans": [dict(span) for span in spans],
            "events": [dict(event) for event in events],
            "error": error,
        },
    )
    from repro import obs

    obs.metrics().inc(M_SHARDS_WRITTEN)
    return path


def write_worker_shard(
    path: Union[str, Path],
    *,
    owner: str,
    pid: int,
    started: float,
    seconds: float,
    cells: Sequence[str],
    counters: Mapping[str, float],
    spans: Sequence[Mapping[str, object]],
    events: Sequence[Mapping[str, object]],
) -> Path:
    """Atomically persist one service worker's lifetime telemetry.

    A worker shard is the service-mode sibling of a session shard: one
    per :func:`repro.service.worker.worker_loop` process, carrying the
    worker's process-level counters (lease traffic, cells committed —
    attempt-scoped generation counters flow through the sidecars and the
    ledger instead, exactly as in a sequential run) and its buffered
    event stream, so ``python -m repro inspect RUN_DIR workers`` can
    reconstruct who did what after every process is gone.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write(
        path,
        {
            "format": OBS_FORMAT,
            "kind": "worker",
            "owner": owner,
            "pid": int(pid),
            "started": float(started),
            "seconds": float(seconds),
            "cells": list(cells),
            "counters": dict(counters),
            "spans": [dict(span) for span in spans],
            "events": [dict(event) for event in events],
        },
    )
    from repro import obs

    obs.metrics().inc(M_SHARDS_WRITTEN)
    return path


class ObsStore:
    """Writer-side handle on a run directory's ``obs/`` shard store."""

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        self.obs_dir = self.run_dir / "obs"
        self.obs_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def attempt_shard_path(self, cell: str, key: str, attempt: int) -> Path:
        return self.obs_dir / attempt_shard_name(cell, key, attempt)

    def has_attempt(self, cell: str, key: str, attempt: int) -> bool:
        return self.attempt_shard_path(cell, key, attempt).exists()

    def worker_shard_path(self, owner: str) -> Path:
        """Shard path for one service worker's lifetime telemetry.

        Owner ids are pid-derived (unique per worker process per run),
        so the path never collides and a scan is race-free.
        """
        return self.obs_dir / f"worker-{owner}.json"

    # ------------------------------------------------------------------
    def next_session_path(self) -> Path:
        """Allocate the next ``session-<NNN>.json`` path.

        Only the single parent process of a session allocates, so a scan
        is race-free; resumed sessions of one run dir number onward.
        """
        taken = []
        for existing in self.obs_dir.glob("session-*.json"):
            stem = existing.stem.rpartition("-")[2]
            if stem.isdigit():
                taken.append(int(stem))
        return self.obs_dir / f"session-{(max(taken) + 1 if taken else 0):03d}.json"

    def write_session(
        self,
        *,
        pid: int,
        started: float,
        seconds: float,
        root_span_id: Optional[str],
        counters: Mapping[str, float],
        spans: Sequence[Mapping[str, object]],
        events: Sequence[Mapping[str, object]],
    ) -> Path:
        """Atomically persist one parent session's telemetry.

        *counters* must be parent-only (the caller subtracts the worker
        counters it merged); worker numbers live in the ledger and the
        attempt shards, and the reader treats the ledger as their single
        source of truth.
        """
        path = self.next_session_path()
        _atomic_write(
            path,
            {
                "format": OBS_FORMAT,
                "kind": "session",
                "session": path.stem,
                "pid": int(pid),
                "started": float(started),
                "seconds": float(seconds),
                "root_span_id": root_span_id,
                "counters": dict(counters),
                "spans": [dict(span) for span in spans],
                "events": [dict(event) for event in events],
            },
        )
        from repro import obs

        obs.metrics().inc(M_SHARDS_WRITTEN)
        return path


# ----------------------------------------------------------------------
# Read side
# ----------------------------------------------------------------------

class RunTelemetry:
    """Merged view over a run directory's ledger + telemetry shards."""

    def __init__(
        self,
        run_dir: Path,
        ledger,
        attempts: List[Dict[str, object]],
        sessions: List[Dict[str, object]],
        workers: Optional[List[Dict[str, object]]] = None,
    ) -> None:
        self.run_dir = run_dir
        self.ledger = ledger
        #: every attempt shard, sorted by (cell, attempt)
        self.attempts = attempts
        #: every session shard, sorted by start time
        self.sessions = sessions
        #: every service worker shard, sorted by start time
        self.workers = workers if workers is not None else []

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, run_dir: Union[str, Path]) -> "RunTelemetry":
        """Read the ledger and every shard; corrupt shards are reported
        (``obs.shard_corrupt`` event) and skipped, never fatal."""
        from repro import obs
        from repro.resilience.ledger import RunLedger

        run_dir = Path(run_dir)
        ledger = RunLedger.load(run_dir)
        attempts: List[Dict[str, object]] = []
        sessions: List[Dict[str, object]] = []
        workers: List[Dict[str, object]] = []
        obs_dir = run_dir / "obs"
        shard_paths = sorted(obs_dir.glob("*.json")) if obs_dir.is_dir() else []
        for path in shard_paths:
            try:
                data = json.loads(path.read_text())
            except (ValueError, OSError) as exc:
                obs.events().warning(
                    E_SHARD_CORRUPT,
                    path=str(path),
                    kind=type(exc).__name__,
                    error=str(exc),
                    msg=f"unreadable telemetry shard {path}; skipping it",
                )
                continue
            if data.get("format") != OBS_FORMAT or "kind" not in data:
                obs.events().warning(
                    E_SHARD_CORRUPT,
                    path=str(path),
                    kind="format",
                    error=str(data.get("format")),
                    msg=f"unsupported telemetry shard format in {path}",
                )
                continue
            if data["kind"] == "attempt":
                attempts.append(data)
            elif data["kind"] == "session":
                sessions.append(data)
            elif data["kind"] == "worker":
                workers.append(data)
        attempts.sort(key=lambda a: (str(a["cell"]), int(a["attempt"])))
        sessions.sort(key=lambda s: float(s["started"]))
        workers.sort(key=lambda w: (float(w["started"]), str(w["owner"])))
        obs.metrics().inc(
            M_SHARDS_READ, len(attempts) + len(sessions) + len(workers)
        )
        return cls(run_dir, ledger, attempts, sessions, workers)

    # ------------------------------------------------------------------
    def attempts_for(self, cell: str) -> List[Dict[str, object]]:
        return [a for a in self.attempts if a["cell"] == cell]

    def winning_attempts(self) -> Dict[str, Dict[str, object]]:
        """The ``ok`` shard that produced each done cell's artifact.

        Matched on the cell's *current* content key (a resumed run with a
        changed cell re-keys, orphaning old shards) and, among matching
        ``ok`` shards, the highest lifetime attempt wins.
        """
        from repro.resilience.ledger import DONE

        out: Dict[str, Dict[str, object]] = {}
        for name, record in self.ledger.cells.items():
            if record["state"] != DONE:
                continue
            matching = [
                a
                for a in self.attempts
                if a["cell"] == name
                and a["key"] == record["key"]
                and a["outcome"] == "ok"
            ]
            if matching:
                out[name] = max(matching, key=lambda a: int(a["attempt"]))
        return out

    def failed_attempts(self) -> List[Dict[str, object]]:
        return [a for a in self.attempts if a["outcome"] != "ok"]

    # ------------------------------------------------------------------
    def main_pid(self) -> Optional[int]:
        """PID of the most recent parent session (the trace's ``main``)."""
        if not self.sessions:
            return None
        return int(self.sessions[-1]["pid"])

    def merged_spans(self) -> List[Dict[str, object]]:
        """One whole-run span list across every process and session.

        Sessions contribute their parent-process spans; winning and
        failed attempts contribute worker spans (a failed worker's
        partial spans are part of what the run paid for).  Superseded
        ``ok`` shards of re-keyed cells are excluded.  Deterministic
        order: (start, span_id).
        """
        spans: List[Dict[str, object]] = []
        for session in self.sessions:
            spans.extend(session.get("spans", []))
        winning = self.winning_attempts()
        winning_paths = {id(shard) for shard in winning.values()}
        for shard in self.attempts:
            if shard["outcome"] != "ok" or id(shard) in winning_paths:
                spans.extend(shard.get("spans", []))
        spans.sort(key=lambda s: (float(s["start"]), str(s["span_id"])))
        return spans

    def chrome(self) -> Dict[str, object]:
        return chrome_payload(self.merged_spans(), main_pid=self.main_pid())

    def write_chrome(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        _atomic_write(path, self.chrome())
        return path

    # ------------------------------------------------------------------
    def merged_events(self) -> List[Dict[str, object]]:
        """Every event of every shard, ordered by wall-clock time."""
        events: List[Dict[str, object]] = []
        for shard in self.sessions + self.attempts + self.workers:
            events.extend(shard.get("events", []))
        events.sort(key=lambda e: float(e.get("time", 0.0)))
        return events

    def worker_counters(self) -> Dict[str, float]:
        """Process-level counters summed across service worker shards.

        Lease and service traffic only — attempt-scoped generation
        counters are deliberately absent (they flow through the sidecars
        into the ledger, the single source of truth
        :meth:`reconcile` checks), so these never overlap
        :meth:`counters_by_cell`.
        """
        total: Dict[str, float] = {}
        for shard in self.workers:
            for name, value in shard.get("counters", {}).items():
                total[name] = total.get(name, 0.0) + float(value)
        return total

    def counters_by_cell(self) -> Dict[str, Dict[str, float]]:
        """Per-done-cell counters, straight from the ledger.

        The ledger is the single source of truth for worker counters
        (merged exactly once per done transition, resume-safe), so the
        sum over cells here equals ``ledger.metrics_total()`` *exactly* —
        the reconciliation property the inspect reports rely on.
        """
        from repro.resilience.ledger import DONE

        return {
            name: {k: float(v) for k, v in record.get("metrics", {}).items()}
            for name, record in self.ledger.cells.items()
            if record["state"] == DONE
        }

    def session_counters(self) -> Dict[str, float]:
        """Parent-side counters summed across sessions (no worker numbers)."""
        total: Dict[str, float] = {}
        for session in self.sessions:
            for name, value in session.get("counters", {}).items():
                total[name] = total.get(name, 0.0) + float(value)
        return total

    def reconcile(self) -> List[Dict[str, object]]:
        """Cross-check winning-shard counters against the ledger.

        Returns one record per divergence (missing shard counters are
        only a divergence when the ledger recorded some — a shardless
        promoted cell still reconciles through its sidecar).  An empty
        list is the healthy state.
        """
        diffs: List[Dict[str, object]] = []
        winning = self.winning_attempts()
        for name, ledger_counters in self.counters_by_cell().items():
            shard = winning.get(name)
            if shard is None:
                continue
            shard_counters = {
                k: float(v) for k, v in shard.get("counters", {}).items()
            }
            if shard_counters != ledger_counters:
                diffs.append(
                    {
                        "cell": name,
                        "ledger": ledger_counters,
                        "shard": shard_counters,
                    }
                )
        return diffs


def load_chrome_spans(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Canonical span list back out of an exported Chrome trace.

    Reads the ``reproSpans`` sidecar key, so the lossy float µs
    conversion in ``traceEvents`` never has to round-trip; re-exporting
    the returned spans with :func:`write_chrome_spans` is byte-identical.
    """
    data = json.loads(Path(path).read_text())
    return list(data.get("reproSpans", []))


def write_chrome_spans(
    path: Union[str, Path],
    spans: Sequence[Dict[str, object]],
    main_pid: Optional[int] = None,
) -> Path:
    """Write a Chrome trace for *spans* (same writer the store uses)."""
    path = Path(path)
    _atomic_write(path, chrome_payload(spans, main_pid=main_pid))
    return path
