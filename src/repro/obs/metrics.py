"""In-process metrics registry: counters, gauges, histograms.

Increments are one dict update — cheap enough for per-chunk accounting on
the generation hot path.  The registry is process-local; pool workers run
their own :class:`Metrics`, ship :meth:`snapshot` back with their results,
and the parent :meth:`merge`\\ s the deltas, so a parallel run ends with
one coherent registry (the numbers :class:`~repro.camodel.stats.GenerationStats`
is now a view over).

Histograms carry fixed, log-spaced buckets besides count/sum/min/max, so
p50/p95/p99 estimates (:meth:`Metrics.percentile`) are deterministic —
the same samples produce the same estimate in any order, across merges,
and across processes.  The bounds cover 1 µs to 100 ks at four buckets
per decade, matching the duration distributions the repo observes.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Mapping, Optional

#: fixed histogram bucket upper bounds: 10^(k/4) for 1e-6 .. 1e5.
#: Values at or below the first bound land in bucket 0, values above the
#: last bound in the overflow bucket — len(BUCKET_BOUNDS) + 1 in total.
BUCKET_BOUNDS: tuple = tuple(10.0 ** (exp / 4.0) for exp in range(-24, 21))


def _new_histogram() -> Dict[str, object]:
    return {
        "count": 0.0,
        "sum": 0.0,
        "min": float("inf"),
        "max": float("-inf"),
        "buckets": [0.0] * (len(BUCKET_BOUNDS) + 1),
    }


class Metrics:
    """Named counters / gauges / histograms with snapshot-and-merge."""

    def __init__(self):
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        """Add *value* to a counter (created at 0)."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of a gauge."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into a histogram (count/sum/min/max/buckets)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = _new_histogram()
        hist["count"] += 1
        hist["sum"] += value
        hist["min"] = min(hist["min"], value)
        hist["max"] = max(hist["max"], value)
        hist["buckets"][bisect_left(BUCKET_BOUNDS, value)] += 1

    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict[str, float]:
        """Copy of the counters, for later :meth:`counter_delta`."""
        return dict(self.counters)

    def counter_delta(self, checkpoint: Mapping[str, float]) -> Dict[str, float]:
        """Counter increments since *checkpoint* (zero deltas omitted)."""
        out: Dict[str, float] = {}
        for name, value in self.counters.items():
            delta = value - checkpoint.get(name, 0.0)
            if delta:
                out[name] = delta
        return out

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Full, JSON-serializable state (what crosses a worker pipe)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }

    def merge_counters(self, counters: Mapping[str, float]) -> None:
        """Fold a plain counter mapping in (adds to existing values).

        The resilience run layer stores each worker's counters in its
        run ledger and merges them here exactly once, at the cell's
        ``done`` transition — a resumed run reads completed cells from
        the ledger instead, so nothing is ever double-counted.
        """
        for name, value in counters.items():
            self.inc(name, float(value))

    def merge(self, snapshot: Mapping[str, Mapping[str, object]]) -> None:
        """Fold a child snapshot in: counters add, histograms combine,
        gauges last-write-wins."""
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, float(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, float(value))
        for name, other in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = _new_histogram()
            hist["count"] += other["count"]
            hist["sum"] += other["sum"]
            hist["min"] = min(hist["min"], other["min"])
            hist["max"] = max(hist["max"], other["max"])
            # Buckets from an older writer may be absent; counts and
            # extremes still merge, percentiles just see fewer samples.
            other_buckets = other.get("buckets")
            if other_buckets is not None and len(other_buckets) == len(
                hist["buckets"]
            ):
                hist["buckets"] = [
                    a + b for a, b in zip(hist["buckets"], other_buckets)
                ]

    # ------------------------------------------------------------------
    def get(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def percentile(self, name: str, q: float) -> float:
        """Deterministic quantile estimate from the fixed buckets.

        *q* is a fraction in (0, 1] (``0.95`` for p95).  The estimate
        interpolates linearly inside the bucket holding the q-th sample
        and is clamped to the observed min/max, so it is exact for
        single-sample histograms and order-independent always.
        """
        hist = self.histograms.get(name)
        if hist is None or not hist["count"]:
            return 0.0
        return _bucket_percentile(hist, q)

    def render(self, prefix: Optional[str] = None) -> str:
        """Plain-text dump (``--stats``-style debugging aid)."""
        lines = []
        for name in sorted(self.counters):
            if prefix and not name.startswith(prefix):
                continue
            lines.append(f"{name} = {self.counters[name]:g}")
        for name in sorted(self.gauges):
            if prefix and not name.startswith(prefix):
                continue
            lines.append(f"{name} = {self.gauges[name]:g} (gauge)")
        for name in sorted(self.histograms):
            if prefix and not name.startswith(prefix):
                continue
            h = self.histograms[name]
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"{name}: n={h['count']:g} mean={mean:g} "
                f"min={h['min']:g} max={h['max']:g} "
                f"p50={self.percentile(name, 0.50):g} "
                f"p95={self.percentile(name, 0.95):g} "
                f"p99={self.percentile(name, 0.99):g}"
            )
        return "\n".join(lines)


def _bucket_percentile(hist: Mapping[str, object], q: float) -> float:
    """Quantile of one histogram dict (see :meth:`Metrics.percentile`)."""
    count = float(hist["count"])  # type: ignore[arg-type]
    lo_clamp = float(hist["min"])  # type: ignore[arg-type]
    hi_clamp = float(hist["max"])  # type: ignore[arg-type]
    buckets: Optional[List[float]] = hist.get("buckets")  # type: ignore[assignment]
    if not buckets or not any(buckets):
        # Bucketless (older writer): the extremes are all we know.
        return hi_clamp if q >= 0.5 else lo_clamp
    target = max(1.0, q * count)
    cumulative = 0.0
    for index, in_bucket in enumerate(buckets):
        if not in_bucket:
            continue
        if cumulative + in_bucket < target:
            cumulative += in_bucket
            continue
        lower = BUCKET_BOUNDS[index - 1] if index > 0 else lo_clamp
        upper = (
            BUCKET_BOUNDS[index] if index < len(BUCKET_BOUNDS) else hi_clamp
        )
        fraction = (target - cumulative) / in_bucket
        estimate = lower + (upper - lower) * fraction
        return min(max(estimate, lo_clamp), hi_clamp)
    return hi_clamp
