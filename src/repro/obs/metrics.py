"""In-process metrics registry: counters, gauges, histograms.

Increments are one dict update — cheap enough for per-chunk accounting on
the generation hot path.  The registry is process-local; pool workers run
their own :class:`Metrics`, ship :meth:`snapshot` back with their results,
and the parent :meth:`merge`\\ s the deltas, so a parallel run ends with
one coherent registry (the numbers :class:`~repro.camodel.stats.GenerationStats`
is now a view over).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional


def _new_histogram() -> Dict[str, float]:
    return {"count": 0.0, "sum": 0.0, "min": float("inf"), "max": float("-inf")}


class Metrics:
    """Named counters / gauges / histograms with snapshot-and-merge."""

    def __init__(self):
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        """Add *value* to a counter (created at 0)."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of a gauge."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into a histogram (count/sum/min/max)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = _new_histogram()
        hist["count"] += 1
        hist["sum"] += value
        hist["min"] = min(hist["min"], value)
        hist["max"] = max(hist["max"], value)

    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict[str, float]:
        """Copy of the counters, for later :meth:`counter_delta`."""
        return dict(self.counters)

    def counter_delta(self, checkpoint: Mapping[str, float]) -> Dict[str, float]:
        """Counter increments since *checkpoint* (zero deltas omitted)."""
        out: Dict[str, float] = {}
        for name, value in self.counters.items():
            delta = value - checkpoint.get(name, 0.0)
            if delta:
                out[name] = delta
        return out

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Full, JSON-serializable state (what crosses a worker pipe)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }

    def merge_counters(self, counters: Mapping[str, float]) -> None:
        """Fold a plain counter mapping in (adds to existing values).

        The resilience run layer stores each worker's counters in its
        run ledger and merges them here exactly once, at the cell's
        ``done`` transition — a resumed run reads completed cells from
        the ledger instead, so nothing is ever double-counted.
        """
        for name, value in counters.items():
            self.inc(name, float(value))

    def merge(self, snapshot: Mapping[str, Mapping[str, object]]) -> None:
        """Fold a child snapshot in: counters add, histograms combine,
        gauges last-write-wins."""
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, float(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, float(value))
        for name, other in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = _new_histogram()
            hist["count"] += other["count"]
            hist["sum"] += other["sum"]
            hist["min"] = min(hist["min"], other["min"])
            hist["max"] = max(hist["max"], other["max"])

    # ------------------------------------------------------------------
    def get(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def render(self, prefix: Optional[str] = None) -> str:
        """Plain-text dump (``--stats``-style debugging aid)."""
        lines = []
        for name in sorted(self.counters):
            if prefix and not name.startswith(prefix):
                continue
            lines.append(f"{name} = {self.counters[name]:g}")
        for name in sorted(self.gauges):
            if prefix and not name.startswith(prefix):
                continue
            lines.append(f"{name} = {self.gauges[name]:g} (gauge)")
        for name in sorted(self.histograms):
            if prefix and not name.startswith(prefix):
                continue
            h = self.histograms[name]
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"{name}: n={h['count']:g} mean={mean:g} "
                f"min={h['min']:g} max={h['max']:g}"
            )
        return "\n".join(lines)
