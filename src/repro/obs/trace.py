"""Run-scoped tracing: nested spans, JSONL and Chrome-trace export.

A :class:`Tracer` produces :class:`Span` records — name, attributes,
wall-clock start, duration, parent — through a context-manager API::

    with tracer.span("camodel.generate", cell="NAND2") as sp:
        ...
        sp.set("defects", 40)

Nesting is tracked per tracer (the active-span stack), so spans opened
inside a ``with`` block parent automatically.  A disabled tracer hands out
a shared no-op span, which keeps the instrumented hot paths free of
measurable overhead when tracing is off (the default).

Cross-process merging: pool workers run their own tracer, export the
finished spans as plain dicts, and the parent re-parents them under the
span that owned the fan-out (:meth:`Tracer.absorb`).  Span ids embed the
producing PID, so ids never collide across workers, and span start times
are wall-clock (``time.time``), so one merged timeline stays coherent.

Export formats:

* :meth:`Tracer.export` / :meth:`Tracer.write_jsonl` — one span dict per
  line, stable keys, diff-friendly.
* :meth:`Tracer.chrome_payload` / :meth:`Tracer.write_chrome` — the Chrome
  trace-viewer JSON (load in ``chrome://tracing`` or https://ui.perfetto.dev);
  each worker process shows as its own track.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

#: Event emitted when :meth:`Tracer.absorb` detects incoming spans whose
#: parents exist in neither the absorbed buffer nor this tracer.
E_ORPHAN_SPANS = "trace.orphan_spans"


class _NullSpan:
    """Shared no-op span handed out by a disabled tracer."""

    __slots__ = ()

    name = None
    span_id = None
    parent_id = None
    start = 0.0
    duration = 0.0
    attrs: Dict[str, object] = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, key: str, value: object) -> None:
        return None


NULL_SPAN = _NullSpan()


class Span:
    """One finished (or in-flight) trace span.

    Also its own context manager: entering records start time and parent,
    exiting records the duration and files the span with its tracer.
    """

    __slots__ = ("name", "span_id", "parent_id", "start", "duration",
                 "attrs", "pid", "_tracer", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self.name = name
        self.attrs = attrs
        self.pid = os.getpid()
        self.span_id = f"{self.pid}-{next(tracer._ids)}"
        self.parent_id: Optional[str] = None
        self.start = 0.0
        self.duration = 0.0
        self._tracer = tracer
        self._t0 = 0.0

    def set(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer._stack:
            self.parent_id = tracer._stack[-1]
        tracer._stack.append(self.span_id)
        self.start = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.duration = time.perf_counter() - self._t0
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] == self.span_id:
            tracer._stack.pop()
        tracer._spans.append(self.to_dict())
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects spans for one run (or one worker process).

    ``enabled=False`` (the default state installed at import time) makes
    :meth:`span` return the shared :data:`NULL_SPAN`; no allocation, no
    clock reads, no buffering.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._spans: List[Dict[str, object]] = []
        self._stack: List[str] = []
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> Union[Span, _NullSpan]:
        """Open a span; use as a context manager."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    @property
    def current_span_id(self) -> Optional[str]:
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    def export(self) -> List[Dict[str, object]]:
        """Finished spans as plain dicts (what crosses a worker pipe)."""
        return list(self._spans)

    def mark(self) -> int:
        """Position in the span buffer, for later :meth:`export_since`."""
        return len(self._spans)

    def export_since(self, mark: int) -> List[Dict[str, object]]:
        """Spans finished after :meth:`mark` was taken."""
        return list(self._spans[mark:])

    def absorb(
        self,
        spans: Iterable[Dict[str, object]],
        parent_id: Optional[str] = None,
    ) -> None:
        """Merge spans exported by another tracer (typically a pool worker).

        Worker-side root spans (``parent_id is None``) are re-parented
        under *parent_id*, so a parallel run yields one tree; ids embed
        the worker PID and never collide with local ones.  Incoming spans
        whose parents exist in neither the absorbed buffer nor this
        tracer would silently break the tree, so they raise a
        ``trace.orphan_spans`` warning event instead.
        """
        incoming = [dict(span) for span in spans]
        if not incoming:
            return
        known = {record["span_id"] for record in incoming}
        known.update(span["span_id"] for span in self._spans)
        known.update(self._stack)
        if parent_id is not None:
            known.add(parent_id)
        orphans = sorted(
            {
                str(record["parent_id"])
                for record in incoming
                if record.get("parent_id") is not None
                and record["parent_id"] not in known
            }
        )
        if orphans:
            from repro import obs  # local import: obs package imports us

            obs.events().warning(
                E_ORPHAN_SPANS,
                orphans=orphans,
                spans=len(incoming),
                parent_id=parent_id,
            )
        for record in incoming:
            if record.get("parent_id") is None and parent_id is not None:
                record["parent_id"] = parent_id
            self._spans.append(record)

    # ------------------------------------------------------------------
    def write_jsonl(self, path: Union[str, Path]) -> None:
        """One span dict per line."""
        lines = [json.dumps(span, sort_keys=True) for span in self._spans]
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))

    def chrome_payload(self) -> Dict[str, object]:
        """Chrome trace-viewer JSON object (``traceEvents`` format)."""
        return chrome_payload(self._spans, main_pid=os.getpid())

    def write_chrome(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.chrome_payload()))

    def write(self, path: Union[str, Path]) -> None:
        """Write by extension: ``.jsonl`` spans, anything else Chrome JSON."""
        if str(path).endswith(".jsonl"):
            self.write_jsonl(path)
        else:
            self.write_chrome(path)


def chrome_payload(
    spans: Sequence[Dict[str, object]],
    main_pid: Optional[int] = None,
) -> Dict[str, object]:
    """Chrome trace-viewer JSON for a span list (``traceEvents`` format).

    *main_pid* names which process track is labelled ``main`` — the live
    tracer passes its own PID; the run-directory store passes the PID
    recorded in the session shard, so offline merges label processes the
    way the run saw them.  The canonical span list rides along under the
    ``reproSpans`` key (trace viewers ignore unknown keys), which is what
    makes an exported trace load back losslessly.
    """
    events: List[Dict[str, object]] = []
    pids: List[int] = []
    for span in spans:
        if span["pid"] not in pids:
            pids.append(span["pid"])  # type: ignore[arg-type]
        args = dict(span["attrs"])  # type: ignore[call-overload]
        args["span_id"] = span["span_id"]
        if span["parent_id"] is not None:
            args["parent_id"] = span["parent_id"]
        events.append(
            {
                "name": span["name"],
                "ph": "X",
                "ts": span["start"] * 1e6,  # type: ignore[operator]
                "dur": span["duration"] * 1e6,  # type: ignore[operator]
                "pid": span["pid"],
                "tid": span["pid"],
                "cat": str(span["name"]).split(".", 1)[0],
                "args": args,
            }
        )
    if main_pid is None:
        main_pid = os.getpid()
    for pid in pids:
        label = "main" if pid == main_pid else f"worker {pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": label},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "reproSpans": [dict(span) for span in spans],
    }


def orphan_parents(spans: Sequence[Dict[str, object]]) -> List[str]:
    """Parent ids referenced by *spans* but not present — [] for a good merge."""
    ids = {span["span_id"] for span in spans}
    return sorted(
        {
            str(span["parent_id"])
            for span in spans
            if span["parent_id"] is not None and span["parent_id"] not in ids
        }
    )
