"""Structured event log with pluggable sinks.

Replaces the ad-hoc stderr prints that used to live in the cache / flow /
experiment modules.  An event is a name plus structured fields::

    obs.events().warning("cache.unreadable", path=str(path), error=str(exc),
                         msg=f"ignoring unreadable CA model cache {path}: {exc}")

Sinks decide what happens: :class:`TextSink` renders one line to stderr
(the default, at ``warning`` and above — matching the old behaviour),
:class:`JsonlSink` appends machine-readable JSON lines, :class:`NullSink`
drops everything, :class:`ListSink` buffers (tests), :class:`TeeSink`
fans out.  The optional ``msg`` field is the human-readable rendering;
every other field is data.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def level_value(level: str) -> int:
    try:
        return LEVELS[level]
    except KeyError:
        raise ValueError(f"unknown event level {level!r}") from None


class Event:
    """One structured log record."""

    __slots__ = ("name", "level", "time", "fields")

    def __init__(self, name: str, level: str, fields: Dict[str, object]):
        self.name = name
        self.level = level
        self.time = time.time()
        self.fields = fields

    def to_dict(self) -> Dict[str, object]:
        out = {"event": self.name, "level": self.level, "time": self.time}
        out.update(self.fields)
        return out

    def render(self) -> str:
        """One human-readable line."""
        msg = self.fields.get("msg")
        if msg is not None:
            return f"[{self.level}] {self.name}: {msg}"
        data = " ".join(
            f"{k}={v}" for k, v in self.fields.items() if k != "msg"
        )
        return f"[{self.level}] {self.name}" + (f" {data}" if data else "")


class NullSink:
    """Drops every event (``--quiet`` beyond errors, or library embedding)."""

    def emit(self, event: Event) -> None:
        return None

    def close(self) -> None:
        return None


class TextSink:
    """Renders events at or above *min_level* as one line of text.

    ``stream=None`` resolves ``sys.stderr`` at emit time, so output
    respects later redirection (pytest capture, CLI piping).
    """

    def __init__(self, min_level: str = "warning", stream=None):
        self.min_value = level_value(min_level)
        self._stream = stream

    def emit(self, event: Event) -> None:
        if level_value(event.level) < self.min_value:
            return
        stream = self._stream if self._stream is not None else sys.stderr
        stream.write(event.render() + "\n")

    def close(self) -> None:
        return None


class JsonlSink:
    """Appends every event as one JSON line to *path*."""

    def __init__(self, path: Union[str, Path], min_level: str = "debug"):
        self.path = Path(path)
        self.min_value = level_value(min_level)
        self._handle = None

    def emit(self, event: Event) -> None:
        if level_value(event.level) < self.min_value:
            return
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        self._handle.write(json.dumps(event.to_dict(), default=str) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class ListSink:
    """Buffers events in memory — the test double."""

    def __init__(self):
        self.events: List[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def close(self) -> None:
        return None

    def named(self, name: str) -> List[Event]:
        return [e for e in self.events if e.name == name]


class TeeSink:
    """Fans one event out to several sinks."""

    def __init__(self, sinks: Sequence[object]):
        self.sinks = list(sinks)

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class EventLog:
    """Front door: ``emit`` plus per-level helpers."""

    def __init__(self, sink: Optional[object] = None):
        self.sink = sink if sink is not None else TextSink()

    def emit(self, name: str, level: str = "info", **fields) -> None:
        level_value(level)  # validate early, even if the sink drops it
        self.sink.emit(Event(name, level, fields))

    def debug(self, name: str, **fields) -> None:
        self.emit(name, level="debug", **fields)

    def info(self, name: str, **fields) -> None:
        self.emit(name, level="info", **fields)

    def warning(self, name: str, **fields) -> None:
        self.emit(name, level="warning", **fields)

    def error(self, name: str, **fields) -> None:
        self.emit(name, level="error", **fields)

    def close(self) -> None:
        self.sink.close()
