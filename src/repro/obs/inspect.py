"""Analysis reports over a run directory's telemetry store.

Every function here renders one ``python -m repro inspect RUN_DIR``
subreport as a plain string (the CLI is the only sanctioned printer) from
a loaded :class:`~repro.obs.store.RunTelemetry`:

* :func:`report_summary` — per-cell wall-clock vs. simulate vs. merge
  vs. unattributed overhead, with an exact reconciliation check against
  :meth:`~repro.resilience.ledger.RunLedger.metrics_total`.
* :func:`report_stragglers` — slowest-N cells and the span names their
  winning attempt actually spent its time in.
* :func:`report_cache` — phase-cache / plan-store effectiveness and the
  padding waste of the packed cross-cell kernel.
* :func:`report_failures` — the retry / quarantine timeline, the ledger
  error records joined with the failed attempts' telemetry shards.

:func:`watch_snapshot` + :func:`render_watch` back ``python -m repro
watch RUN_DIR``: a live tail of the ledger (done / pending / running /
quarantined counts) with an ETA from the rolling completion rate
observed *within* the watch window — no ledger format change needed.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.store import RunTelemetry

# obs metric names (registered in repro.lint.catalog)
M_REPORTS = "inspect.reports"
M_WATCH_REFRESHES = "watch.refreshes"

# ledger counter names the reports aggregate (defined by
# repro.camodel.stats; string-duplicated here to keep repro.obs
# import-light — the rot-guard in tests/test_lint.py pins them).
_C_GOLDEN = "camodel.seconds.golden"
_C_DEFECTS = "camodel.seconds.defects"
_C_MERGE = "camodel.seconds.merge"
_C_TOTAL = "camodel.seconds.total"
_C_SOLVES = "camodel.sim.solves"
_C_CACHE_HITS = "camodel.sim.cache_hits"


def _fmt_seconds(value: float) -> str:
    return f"{value:8.3f}"


def _fmt_rate(hits: float, total: float) -> str:
    return f"{hits / total:6.1%}" if total else "     -"


def report_summary(tel: RunTelemetry) -> str:
    """Per-cell time breakdown + exact ledger reconciliation."""
    by_cell = tel.counters_by_cell()
    lines = [
        f"run {tel.run_dir}",
        f"{'cell':<20} {'wall[s]':>8} {'simulate':>8} {'merge':>8} "
        f"{'other':>8} {'solves':>8} {'hit%':>6}",
    ]
    totals = {"wall": 0.0, "sim": 0.0, "merge": 0.0, "other": 0.0}
    for name in sorted(by_cell):
        counters = by_cell[name]
        wall = float(tel.ledger.cells[name].get("seconds", 0.0))
        sim = counters.get(_C_GOLDEN, 0.0) + counters.get(_C_DEFECTS, 0.0)
        merge = counters.get(_C_MERGE, 0.0)
        other = max(0.0, wall - counters.get(_C_TOTAL, 0.0))
        solves = counters.get(_C_SOLVES, 0.0)
        hits = counters.get(_C_CACHE_HITS, 0.0)
        totals["wall"] += wall
        totals["sim"] += sim
        totals["merge"] += merge
        totals["other"] += other
        lines.append(
            f"{name:<20} {_fmt_seconds(wall)} {_fmt_seconds(sim)} "
            f"{_fmt_seconds(merge)} {_fmt_seconds(other)} "
            f"{solves:8g} {_fmt_rate(hits, hits + solves)}"
        )
    lines.append(
        f"{'TOTAL':<20} {_fmt_seconds(totals['wall'])} "
        f"{_fmt_seconds(totals['sim'])} {_fmt_seconds(totals['merge'])} "
        f"{_fmt_seconds(totals['other'])}"
    )
    # Per-cell sums ARE the ledger totals (single source of truth); the
    # shard cross-check catches a worker whose shard diverged anyway.
    ledger_total = tel.ledger.metrics_total()
    summed: Dict[str, float] = {}
    for counters in by_cell.values():
        for key, value in counters.items():
            summed[key] = summed.get(key, 0.0) + value
    exact = all(
        abs(summed.get(k, 0.0) - v) == 0.0 for k, v in ledger_total.items()
    ) and set(summed) == set(ledger_total)
    diffs = tel.reconcile()
    lines.append(
        "reconciliation: per-cell sums "
        + ("== ledger metrics_total() (exact)" if exact else "DIVERGE from ledger")
        + (f"; {len(diffs)} shard/ledger mismatch(es)" if diffs else "; shards agree")
    )
    return "\n".join(lines)


def report_stragglers(tel: RunTelemetry, top: int = 5) -> str:
    """Slowest-N done cells with their dominant span names."""
    winning = tel.winning_attempts()
    ranked = sorted(
        (
            (float(record.get("seconds", 0.0)), name)
            for name, record in tel.ledger.cells.items()
            if record["state"] == "done"
        ),
        reverse=True,
    )[: max(1, top)]
    lines = [f"slowest {len(ranked)} cell(s) of {tel.run_dir}"]
    for seconds, name in ranked:
        lines.append(f"{name:<20} {_fmt_seconds(seconds)}s")
        shard = winning.get(name)
        if shard is None:
            lines.append("    (no telemetry shard for this cell)")
            continue
        by_name: Dict[str, float] = {}
        for span in shard.get("spans", []):
            by_name[str(span["name"])] = (
                by_name.get(str(span["name"]), 0.0) + float(span["duration"])
            )
        total = float(shard.get("seconds", 0.0)) or sum(by_name.values())
        for span_name, duration in sorted(
            by_name.items(), key=lambda kv: kv[1], reverse=True
        )[:3]:
            share = duration / total if total else 0.0
            lines.append(
                f"    {span_name:<28} {duration:8.3f}s ({share:5.1%})"
            )
    return "\n".join(lines)


def report_cache(tel: RunTelemetry) -> str:
    """Phase-cache / plan-store effectiveness + packed padding waste."""
    total = tel.ledger.metrics_total()
    session = tel.session_counters()
    merged = dict(total)
    for key, value in session.items():
        merged[key] = merged.get(key, 0.0) + value
    solves = merged.get(_C_SOLVES, 0.0)
    hits = merged.get(_C_CACHE_HITS, 0.0)
    loads = merged.get("phasecache.loads", 0.0)
    misses = merged.get("phasecache.misses", 0.0)
    stores = merged.get("phasecache.stores", 0.0)
    pc_hits = merged.get("phasecache.hits", 0.0)
    reuse = merged.get("throughput.plan_reuse", 0.0)
    kernel_slots = merged.get("throughput.kernel_slots", 0.0)
    padded_slots = merged.get("throughput.padded_slots", 0.0)
    lines = [
        f"cache effectiveness for {tel.run_dir}",
        f"solver memoization : {hits:g} hits / {hits + solves:g} lookups "
        f"({_fmt_rate(hits, hits + solves).strip()})",
        f"phase-cache store  : {loads:g} loads, {misses:g} misses "
        f"({_fmt_rate(loads, loads + misses).strip()} warm), "
        f"{stores:g} files written, {pc_hits:g} prefetched phases served",
        f"plan store         : {reuse:g} plan reuses",
    ]
    if kernel_slots:
        waste = padded_slots / kernel_slots
        lines.append(
            f"packed kernel      : {kernel_slots:g} slots, "
            f"{padded_slots:g} padding ({waste:.1%} waste)"
        )
    else:
        lines.append("packed kernel      : no packed kernel calls recorded")
    return "\n".join(lines)


def report_workers(tel: RunTelemetry) -> str:
    """Per-worker view of a service run (``repro inspect RUN_DIR workers``).

    Joins the service worker shards
    (:func:`repro.obs.store.write_worker_shard`) with the ledger: who
    committed which cells, each worker's lease traffic, and the run's
    aggregate claim/conflict/reap counters — the reconciled
    multi-worker view the chaos suite asserts over.
    """
    lines = [f"service workers for {tel.run_dir}"]
    if not tel.workers:
        lines.append("no worker shards recorded (sequential run?)")
        return "\n".join(lines)
    lines.append(
        f"{'owner':<16} {'pid':>7} {'cells':>5} {'wall[s]':>8} "
        f"{'claims':>6} {'beats':>6}  committed"
    )
    for shard in tel.workers:
        counters = {
            k: float(v) for k, v in shard.get("counters", {}).items()
        }
        cells = [str(c) for c in shard.get("cells", [])]
        lines.append(
            f"{str(shard['owner']):<16} {int(shard['pid']):>7} "
            f"{len(cells):>5} {_fmt_seconds(float(shard.get('seconds', 0.0)))} "
            f"{counters.get('lease.claims', 0.0):>6g} "
            f"{counters.get('lease.heartbeats', 0.0):>6g}  "
            + (", ".join(cells) if cells else "-")
        )
    total = tel.worker_counters()
    lines.append(
        "lease traffic      : "
        f"{total.get('lease.claims', 0.0):g} claims, "
        f"{total.get('lease.conflicts', 0.0):g} conflicts, "
        f"{total.get('lease.lost', 0.0):g} lost, "
        f"{total.get('service.discards', 0.0):g} discarded attempts"
    )
    done = sum(
        1 for r in tel.ledger.cells.values() if r["state"] == "done"
    )
    committed = sum(len(shard.get("cells", [])) for shard in tel.workers)
    lines.append(
        f"cells committed    : {committed} by workers, {done} done in ledger"
    )
    return "\n".join(lines)


def report_failures(tel: RunTelemetry) -> str:
    """Retry / quarantine timeline joined with the failed-attempt shards."""
    failed_shards = {
        (str(a["cell"]), int(a["attempt"])): a for a in tel.failed_attempts()
    }
    lines = [f"failure timeline for {tel.run_dir}"]
    counts = tel.ledger.failure_report()["counts"]
    lines.append(
        " ".join(f"{state}={count}" for state, count in sorted(counts.items()))
    )
    any_errors = False
    for name in sorted(tel.ledger.cells):
        record = tel.ledger.cells[name]
        errors = record.get("errors", [])
        if not errors:
            continue
        any_errors = True
        lines.append(f"{name} [{record['state']}] ({record['attempts']} attempts)")
        for error in errors:
            attempt = int(error.get("attempt", -1))
            shard = failed_shards.get((name, attempt))
            telemetry = (
                f" pid={shard['pid']} spans={len(shard.get('spans', []))}"
                if shard is not None
                else " (no shard)"
            )
            lines.append(
                f"    attempt {attempt + 1}: {error.get('kind', '?')} "
                f"after {float(error.get('elapsed', 0.0)):.3f}s — "
                f"{error.get('error', '')}{telemetry}"
            )
    if not any_errors:
        lines.append("no failed attempts recorded")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Live watch
# ----------------------------------------------------------------------

class WatchWindow:
    """Rolling per-cell completion rate across watch refreshes."""

    def __init__(self, span: float = 60.0) -> None:
        self.span = span
        self.samples: List[Tuple[float, int]] = []

    def update(self, now: float, done: int) -> Optional[float]:
        """Record one (time, done) sample; returns cells/second or None."""
        self.samples.append((now, done))
        cutoff = now - self.span
        self.samples = [s for s in self.samples if s[0] >= cutoff]
        if len(self.samples) < 2:
            return None
        (t0, d0), (t1, d1) = self.samples[0], self.samples[-1]
        if t1 <= t0 or d1 <= d0:
            return None
        return (d1 - d0) / (t1 - t0)


def watch_snapshot(run_dir: Union[str, Path]) -> Dict[str, object]:
    """One refresh: state counts + shard count, read from disk.

    Safe to call while a run is live — the ledger is rewritten
    atomically, so a reader only ever sees a consistent state.
    """
    from repro.resilience.ledger import RunLedger

    run_dir = Path(run_dir)
    ledger = RunLedger.load(run_dir)
    counts: Dict[str, int] = {}
    for record in ledger.cells.values():
        state = str(record["state"])
        counts[state] = counts.get(state, 0) + 1
    obs_dir = run_dir / "obs"
    shards = len(list(obs_dir.glob("*.json"))) if obs_dir.is_dir() else 0
    return {
        "time": time.monotonic(),
        "total": len(ledger.cells),
        "counts": counts,
        "shards": shards,
    }


def render_watch(
    snapshot: Dict[str, object], rate: Optional[float]
) -> str:
    """One status line for a watch refresh."""
    counts: Dict[str, int] = snapshot["counts"]  # type: ignore[assignment]
    done = counts.get("done", 0)
    total = int(snapshot["total"])  # type: ignore[arg-type]
    pending = counts.get("pending", 0) + counts.get("failed", 0)
    running = counts.get("running", 0)
    quarantined = counts.get("quarantined", 0)
    if rate and pending + running:
        eta = (pending + running) / rate
        eta_text = f"ETA {eta:.0f}s ({rate * 60:.1f} cells/min)"
    elif pending + running:
        eta_text = "ETA …"
    else:
        eta_text = "complete"
    return (
        f"{done}/{total} done, {running} running, {pending} pending, "
        f"{quarantined} quarantined, {snapshot['shards']} shards — {eta_text}"
    )


def watch_complete(snapshot: Dict[str, object]) -> bool:
    """True when no cell can still make progress."""
    counts: Dict[str, int] = snapshot["counts"]  # type: ignore[assignment]
    return not (
        counts.get("pending", 0)
        + counts.get("running", 0)
        + counts.get("failed", 0)
    )
