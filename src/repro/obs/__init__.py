"""repro.obs — run-scoped tracing, metrics, and structured event logging.

Dependency-free instrumentation substrate for the whole repo:

* :mod:`repro.obs.trace` — nested spans with a context-manager API,
  serializable to JSONL and Chrome-trace JSON; worker span buffers merge
  into the parent tracer so a parallel run yields one coherent trace.
* :mod:`repro.obs.metrics` — named counters / gauges / histograms with
  cheap in-process increments and child-process delta merging.
  :class:`~repro.camodel.stats.GenerationStats` is a view over this
  registry.
* :mod:`repro.obs.events` — structured events with pluggable sinks
  (stderr text, JSONL file, silent).

Metric/event namespaces: ``camodel.*`` (generation cost accounting),
``cache.*`` / ``hybrid.*`` (flow layers), and ``resilience.*`` —
retries, timeouts, quarantines and resume reuse emitted by the
checkpointed run layer (:mod:`repro.resilience.runner`), whose workers
merge their counters through :meth:`Metrics.merge_counters` exactly
once per completed cell.

State model: one process-wide :class:`ObsState` (tracer + metrics +
event log), read through :func:`tracer` / :func:`metrics` /
:func:`events`.  Tracing is **off by default** (the null tracer adds no
measurable overhead, see ``benchmarks/test_bench_obs.py``); a CLI run
installs a real one via :func:`session`, and pool workers install a
fresh scope via :func:`scoped` so forked copies of the parent state are
never written to.

Typical embedding::

    from repro import obs

    with obs.session(trace_path="run.json", verbosity=1) as state:
        generate_ca_model(cell, parallelism=4)
    # run.json now holds the Chrome-trace timeline of the run
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.obs.events import (
    Event,
    EventLog,
    JsonlSink,
    LEVELS,
    ListSink,
    NullSink,
    TeeSink,
    TextSink,
)
from repro.obs.metrics import Metrics
from repro.obs.trace import (
    E_ORPHAN_SPANS,
    NULL_SPAN,
    Span,
    Tracer,
    chrome_payload,
    orphan_parents,
)

__all__ = [
    "E_ORPHAN_SPANS",
    "Event",
    "EventLog",
    "JsonlSink",
    "LEVELS",
    "ListSink",
    "Metrics",
    "NULL_SPAN",
    "NullSink",
    "ObsState",
    "Span",
    "TeeSink",
    "TextSink",
    "Tracer",
    "chrome_payload",
    "configure",
    "events",
    "metrics",
    "min_level_for",
    "orphan_parents",
    "scoped",
    "session",
    "tracer",
]


class ObsState:
    """One process-wide instrumentation scope."""

    __slots__ = ("tracer", "metrics", "events")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
        events: Optional[EventLog] = None,
    ):
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = metrics if metrics is not None else Metrics()
        self.events = events if events is not None else EventLog()


_state = ObsState()


def tracer() -> Tracer:
    """The active tracer (disabled null tracer by default)."""
    return _state.tracer


def metrics() -> Metrics:
    """The active metrics registry."""
    return _state.metrics


def events() -> EventLog:
    """The active event log."""
    return _state.events


def configure(state: ObsState) -> ObsState:
    """Install *state* globally; returns the previous state."""
    global _state
    previous = _state
    _state = state
    return previous


@contextmanager
def scoped(
    tracer: Optional[Tracer] = None,
    metrics: Optional[Metrics] = None,
    events: Optional[EventLog] = None,
) -> Iterator[ObsState]:
    """Temporarily swap (parts of) the global scope; restores on exit.

    Pool workers use this with a fresh tracer/metrics so the state forked
    from the parent is never mutated; tests use it for isolation.
    """
    state = ObsState(
        tracer if tracer is not None else _state.tracer,
        metrics if metrics is not None else _state.metrics,
        events if events is not None else _state.events,
    )
    previous = configure(state)
    try:
        yield state
    finally:
        configure(previous)


def min_level_for(verbosity: int) -> str:
    """Map a CLI verbosity (-1 = quiet .. 2 = -vv) to an event level."""
    if verbosity <= -1:
        return "error"
    if verbosity == 0:
        return "warning"
    if verbosity == 1:
        return "info"
    return "debug"


@contextmanager
def session(
    trace_path: Optional[Union[str, Path]] = None,
    log_json: Optional[Union[str, Path]] = None,
    verbosity: int = 0,
    root: Optional[str] = "run",
    trace_enabled: Optional[bool] = None,
    **root_attrs,
) -> Iterator[ObsState]:
    """One observed run: fresh tracer + metrics + sinks, torn down cleanly.

    * ``trace_path`` enables tracing and, on exit, writes the merged span
      buffer there (Chrome-trace JSON, or JSONL when the name ends in
      ``.jsonl``).  ``trace_enabled=True`` enables tracing without a file
      (spans stay readable on the yielded state — used by tests).
    * ``log_json`` appends every event to a JSONL file, regardless of the
      console verbosity.
    * ``verbosity`` filters the stderr text sink
      (:func:`min_level_for`: -1 quiet, 0 default, 1 ``-v``, 2 ``-vv``).
    * ``root`` opens a run-scoped root span every other span nests under.
    """
    enabled = bool(trace_path) if trace_enabled is None else trace_enabled
    run_tracer = Tracer(enabled=enabled)
    sinks = [TextSink(min_level=min_level_for(verbosity))]
    if log_json:
        sinks.append(JsonlSink(log_json))
    log = EventLog(TeeSink(sinks) if len(sinks) > 1 else sinks[0])
    state = ObsState(run_tracer, Metrics(), log)
    previous = configure(state)
    root_span = run_tracer.span(root, **root_attrs) if root else None
    if root_span is not None:
        root_span.__enter__()
    try:
        yield state
    finally:
        if root_span is not None:
            root_span.__exit__(None, None, None)
        configure(previous)
        log.close()
        if trace_path:
            run_tracer.write(trace_path)
