"""Table IV regenerators: prediction-accuracy grids.

* :func:`table4a_same_technology` — leave-one-cell-out over the 28SOI
  library (Table IV.a),
* :func:`table4bc_cross_technology` — train on 28SOI, evaluate C28
  (Table IV.b) or C40 (Table IV.c).

Each returns the :class:`~repro.learning.evaluate.EvaluationReport` plus a
rendered grid.  Scaled-down libraries are used by default (see
DESIGN.md); the *shape* of the results — same-technology near 100 % with
many perfect cells, cross-technology bimodal with C40 transferring better
than C28 — is the reproduction target.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.experiments.cache import DEFAULT_SCALE, library_with_models, paired
from repro.experiments.reporting import format_accuracy_grid
from repro.learning import build_samples, cross_technology, leave_one_out
from repro.learning.evaluate import EvaluationReport
from repro.library.technology import get as get_technology


def table4a_same_technology(
    scale: str = DEFAULT_SCALE,
    kinds: Optional[Set[str]] = frozenset({"open"}),
    verbose: bool = False,
) -> Tuple[EvaluationReport, str]:
    """Table IV.a: predicting defect behaviour on the same technology."""
    library, models = library_with_models("soi28", scale, verbose=verbose)
    samples = build_samples(paired(library, models), get_technology("soi28").electrical)
    report = leave_one_out(samples, kinds=kinds)
    grid = format_accuracy_grid(
        report.group_table(),
        title=f"Table IV.a - 28SOI leave-one-out ({scale} scale, "
        f"{sorted(kinds) if kinds else 'all'} defects)",
    )
    return report, grid


def table4bc_cross_technology(
    eval_tech: str,
    scale: str = DEFAULT_SCALE,
    kinds: Optional[Set[str]] = frozenset({"open"}),
    verbose: bool = False,
) -> Tuple[EvaluationReport, str]:
    """Tables IV.b ('c28') and IV.c ('c40'): train on 28SOI, predict the
    other technology."""
    train_library, train_models = library_with_models("soi28", scale, verbose=verbose)
    eval_library, eval_models = library_with_models(eval_tech, scale, verbose=verbose)
    train_samples = build_samples(
        paired(train_library, train_models), get_technology("soi28").electrical
    )
    eval_samples = build_samples(
        paired(eval_library, eval_models), get_technology(eval_tech).electrical
    )
    report = cross_technology(train_samples, eval_samples, kinds=kinds)
    label = "IV.b" if eval_tech == "c28" else "IV.c"
    grid = format_accuracy_grid(
        report.group_table(),
        title=f"Table {label} - train 28SOI, evaluate {eval_tech} "
        f"({scale} scale, {sorted(kinds) if kinds else 'all'} defects)",
    )
    return report, grid
