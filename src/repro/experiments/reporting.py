"""Plain-text rendering of the paper's tables."""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

GroupKey = Tuple[int, int]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width ASCII table."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)]
    widths = [max(len(v) for v in column) for column in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(map(str, headers), widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(v).ljust(w) for v, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_accuracy_grid(
    group_table: Mapping[GroupKey, Mapping[str, float]],
    title: str = "",
    mark_perfect: bool = True,
) -> str:
    """Render a Table-IV-style grid.

    Rows are transistor counts, columns are input counts; each box shows
    the group's average prediction accuracy (percent).  A ``*`` marks
    groups in which at least one cell is perfectly predicted — the paper's
    green background.
    """
    if not group_table:
        return (title + "\n(empty)") if title else "(empty)"
    input_counts = sorted({k[0] for k in group_table})
    transistor_counts = sorted({k[1] for k in group_table})
    headers = ["#tr \\ #in"] + [str(n) for n in input_counts]
    rows: List[List[str]] = []
    for t in transistor_counts:
        row: List[str] = [str(t)]
        for n in input_counts:
            box = group_table.get((n, t))
            if box is None:
                row.append("")
            else:
                mark = "*" if mark_perfect and box.get("perfect", 0) else ""
                row.append(f"{100.0 * box['mean']:.2f}{mark}")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_summary(summary: Mapping[str, object], title: str = "") -> str:
    rows = [(key, value) for key, value in summary.items()]
    return format_table(("metric", "value"), rows, title=title)
