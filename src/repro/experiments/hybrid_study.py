"""Section V.C study: the hybrid generation flow on a C40 subgroup.

Trains on the 28SOI library, then characterizes the C40 library through
the hybrid flow (Fig. 7): structural analysis routes each cell to ML or to
conventional simulation, simulated models feed back into the training set,
and the cost model accounts generation time in SPICE-license units.

Paper reference points: 29 % identical / 21 % equivalent / 50 % simulated;
99.7 % reduction on the ML-covered half; ~38 % overall reduction; and the
observation that ML actually predicts ~80 % of cells well even though the
structural analysis only clears 50 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

import numpy as np

from repro.experiments.cache import DEFAULT_SCALE, library_with_models, paired
from repro.experiments.reporting import format_summary
from repro.flow import CostModel, HybridFlow, HybridReport
from repro.learning import build_samples
from repro.library.technology import get as get_technology


@dataclass
class HybridStudyResult:
    report: HybridReport
    #: fraction of ALL cells whose ML prediction (hypothetically applied
    #: to every cell) exceeds the quality threshold — the paper's
    #: "works well for about 80 % of cells" observation
    ml_viable_fraction: Optional[float] = None
    #: same fraction restricted to the cells the structural analysis sent
    #: to simulation — measures how conservative (paper) or calibrated
    #: (this reproduction) the routing is
    uncleared_viable_fraction: Optional[float] = None
    #: hypothetical ML accuracy the simulated cells would have had
    uncleared_mean_accuracy: float = 0.0

    def render(self) -> str:
        summary = dict(self.report.summary())
        if self.ml_viable_fraction is not None:
            summary["ml_viable_fraction"] = round(self.ml_viable_fraction, 4)
        if self.uncleared_viable_fraction is not None:
            summary["uncleared_viable_fraction"] = round(
                self.uncleared_viable_fraction, 4
            )
            summary["uncleared_mean_accuracy"] = round(
                self.uncleared_mean_accuracy, 4
            )
        return format_summary(summary, title="Section V.C - hybrid flow study")


def hybrid_flow_study(
    scale: str = DEFAULT_SCALE,
    target_tech: str = "c40",
    kinds: Optional[Set[str]] = None,
    measure_ml_viability: bool = True,
    threshold: float = 0.97,
    verbose: bool = False,
) -> HybridStudyResult:
    """Run the V.C experiment end to end."""
    train_library, train_models = library_with_models("soi28", scale, verbose=verbose)
    target_library, target_models = library_with_models(
        target_tech, scale, verbose=verbose
    )
    params = get_technology(target_tech).electrical
    train_samples = build_samples(
        paired(train_library, train_models), get_technology("soi28").electrical
    )

    flow = HybridFlow(
        train_samples,
        params=params,
        cost_model=CostModel(),
        kinds=kinds,
    )
    report = flow.run(list(target_library), references=target_models)

    ml_viable: Optional[float] = None
    uncleared_viable: Optional[float] = None
    uncleared_mean = 0.0
    if measure_ml_viability:
        # How many cells WOULD the ML path have predicted well?  The
        # simulated ('none') cells have reference models, so replaying
        # them against a from-scratch flow (no feedback) answers the
        # paper's 80 %-vs-50 % observation and measures routing
        # calibration.
        from repro.learning import cross_technology

        target_samples = build_samples(paired(target_library, target_models), params)
        evaluation = cross_technology(train_samples, target_samples, kinds=kinds)
        accuracies = {e.cell_name: e.accuracy for e in evaluation.evaluations}
        judged = [
            accuracies[cell.name]
            for cell in target_library
            if cell.name in accuracies
        ]
        if judged:
            ml_viable = float(np.mean(np.asarray(judged) > threshold))
        simulated_names = {
            d.cell_name for d in report.decisions if d.route == "simulate"
        }
        uncleared = [
            accuracies[name] for name in simulated_names if name in accuracies
        ]
        if uncleared:
            array = np.asarray(uncleared)
            uncleared_viable = float(np.mean(array > threshold))
            uncleared_mean = float(array.mean())
    return HybridStudyResult(
        report=report,
        ml_viable_fraction=ml_viable,
        uncleared_viable_fraction=uncleared_viable,
        uncleared_mean_accuracy=uncleared_mean,
    )
