"""Section V.B analysis: accuracy bands and failure causes.

The paper reports that ~70 % of cross-technology cells predict with
> 97 % accuracy (68 % for C28, 80 % for C40), and traces the poorly
predicted remainder to (i) new logic functions absent from the training
set and (ii) new transistor configurations.  This driver reproduces both
the bands and the cause attribution by joining the evaluation report with
the structural index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.experiments.cache import DEFAULT_SCALE, library_with_models, paired
from repro.experiments.reporting import format_table
from repro.flow.structure import EQUIVALENT, IDENTICAL, NONE, StructuralIndex
from repro.learning import build_samples, cross_technology
from repro.learning.evaluate import EvaluationReport
from repro.library.technology import get as get_technology


@dataclass
class AccuracyBandReport:
    """Accuracy bands joined with structural-match categories."""

    eval_tech: str
    threshold: float
    fraction_above: float
    mean_accuracy: float
    #: structural match -> (count, mean accuracy, fraction above threshold)
    by_match: Dict[str, Tuple[int, float, float]] = field(default_factory=dict)
    evaluation: Optional[EvaluationReport] = None

    def render(self) -> str:
        rows = [
            (
                match,
                count,
                f"{100 * mean:.2f}",
                f"{100 * above:.1f}%",
            )
            for match, (count, mean, above) in sorted(self.by_match.items())
        ]
        rows.append(
            (
                "ALL",
                len(self.evaluation.evaluations) if self.evaluation else 0,
                f"{100 * self.mean_accuracy:.2f}",
                f"{100 * self.fraction_above:.1f}%",
            )
        )
        return format_table(
            ("structural match", "cells", "mean acc", f"> {self.threshold:.0%}"),
            rows,
            title=f"Section V.B bands - 28SOI -> {self.eval_tech}",
        )


def accuracy_bands(
    eval_tech: str,
    scale: str = DEFAULT_SCALE,
    threshold: float = 0.97,
    kinds: Optional[Set[str]] = frozenset({"open"}),
    verbose: bool = False,
) -> AccuracyBandReport:
    """Cross-technology run + per-structural-category accuracy bands."""
    train_library, train_models = library_with_models("soi28", scale, verbose=verbose)
    eval_library, eval_models = library_with_models(eval_tech, scale, verbose=verbose)
    train_samples = build_samples(
        paired(train_library, train_models), get_technology("soi28").electrical
    )
    eval_samples = build_samples(
        paired(eval_library, eval_models), get_technology(eval_tech).electrical
    )
    report = cross_technology(train_samples, eval_samples, kinds=kinds)

    index = StructuralIndex()
    for sample in train_samples:
        index.add(sample.matrix.renamed)
    match_of = {
        sample.name: index.match(sample.matrix.renamed) for sample in eval_samples
    }

    buckets: Dict[str, List[float]] = {IDENTICAL: [], EQUIVALENT: [], NONE: []}
    for evaluation in report.evaluations:
        buckets[match_of[evaluation.cell_name]].append(evaluation.accuracy)

    by_match: Dict[str, Tuple[int, float, float]] = {}
    for match, accuracies in buckets.items():
        if accuracies:
            array = np.asarray(accuracies)
            by_match[match] = (
                len(accuracies),
                float(array.mean()),
                float((array > threshold).mean()),
            )
    return AccuracyBandReport(
        eval_tech=eval_tech,
        threshold=threshold,
        fraction_above=report.accuracy_fraction_above(threshold),
        mean_accuracy=report.mean_accuracy(),
        by_match=by_match,
        evaluation=report,
    )


def fig6_equivalence_demo(scale: str = DEFAULT_SCALE) -> str:
    """Fig. 6: show merged/split high-drive signatures and their collapse."""
    from repro.camatrix import rename_transistors
    from repro.flow.structure import collapse_parallel_duplicates
    from repro.library import C40, SOI28, build_cell

    rows = []
    for tech, style in ((SOI28, "merged"), (C40, "split")):
        cell = build_cell(tech, "NAND2", 2)
        renamed = rename_transistors(cell, tech.electrical)
        collapsed = tuple(
            collapse_parallel_duplicates(b.equation).anon() for b in renamed.branches
        )
        rows.append((tech.name, style, renamed.signature[0], collapsed[0]))
    return format_table(
        ("technology", "drive style", "signature", "drive-collapsed"),
        rows,
        title="Fig. 6 - equivalent high-drive configurations",
    )
