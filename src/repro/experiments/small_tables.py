"""Regenerators for the paper's illustrative tables and figures:
Table I (training rows), Table II (activity / renaming), Table III
(defect columns), Fig. 4 (NAND2 partial CA-matrix) and Fig. 5 (branch
equations of the example schematic).
"""

from __future__ import annotations

from typing import List

from repro.camatrix import (
    build_matrix,
    rename_transistors,
)
from repro.camatrix.matrix import FREE_ROW
from repro.camodel import generate_ca_model
from repro.defects.model import Defect, INTER_SHORT, SHORT
from repro.experiments.reporting import format_table
from repro.library import SOI28, build_cell
from repro.library.synth import (
    CellSpec,
    Leaf,
    StageSpec,
    parallel,
    series,
    synthesize,
)
from repro.logic.fourval import word_to_string
from repro.spice.netlist import CellNetlist


def nand2_cell() -> CellNetlist:
    """The running NAND2 example of Figs. 4 and Tables I-III."""
    return build_cell(SOI28, "NAND2", 1)


def table1_training_rows(limit: int = 12) -> str:
    """Table I: example training-dataset rows for a NAND2 cell."""
    cell = nand2_cell()
    model = generate_ca_model(cell, params=SOI28.electrical)
    matrix = build_matrix(cell, model=model, params=SOI28.electrical,
                          structural_features=False)
    headers = matrix.columns + ["defect", "type", "detect"]
    rows: List[List[object]] = []
    for r in range(matrix.n_rows):
        d = matrix.row_defect[r]
        name, kind = ("free", "free") if d == FREE_ROW else (
            matrix.defects[d].name,
            matrix.defects[d].kind,
        )
        rows.append(list(matrix.features[r]) + [name, kind, int(matrix.labels[r])])
        if len(rows) >= limit:
            break
    # also show one detected row for flavour, mirroring the paper's D15 row
    detected = [
        r
        for r in range(matrix.n_rows)
        if matrix.labels[r] == 1 and matrix.row_defect[r] != FREE_ROW
    ]
    for r in detected[:2]:
        d = matrix.row_defect[r]
        rows.append(
            list(matrix.features[r])
            + [matrix.defects[d].name, matrix.defects[d].kind, 1]
        )
    return format_table(headers, rows, title="Table I - training rows (NAND2)")


def table2_activity() -> str:
    """Table II: activity values and renaming of the NAND2 transistors."""
    cell = nand2_cell()
    renamed = rename_transistors(cell, SOI28.electrical)
    headers = ("old name", "type", "activity value", "new name")
    rows = []
    for t in cell.transistors:
        new = renamed.mapping[t.name]
        rows.append((t.name, t.ttype, renamed.activity[new], new))
    rows.sort(key=lambda r: r[3])
    return format_table(headers, rows, title="Table II - NAND2 activity values")


def table3_defect_columns() -> str:
    """Table III: defect-description columns for an intra-transistor
    drain-source short on P1 and an inter-transistor short on P0's source."""
    cell = nand2_cell()
    renamed = rename_transistors(cell, SOI28.electrical)
    reverse = {new: old for old, new in renamed.mapping.items()}
    p1_old = reverse["P1"]
    p0_old = reverse["P0"]
    intra = Defect("D_intra", SHORT, (p1_old, "D", "S"))
    net0 = cell.transistor(reverse["N0"]).source  # net between N0 and N1
    p0_source = cell.transistor(p0_old).source
    inter = Defect("D_inter", INTER_SHORT, (p0_source, net0))

    names = renamed.canonical_names()
    headers = ["defect"] + [f"{n}_{t}" for n in names for t in ("D", "G", "S", "B")]
    rows = []
    for defect, comment in (
        (intra, "source-drain short on P1"),
        (inter, "net0 & P0-source short"),
    ):
        marked = {
            (renamed.mapping[t], term)
            for t, term in defect.affected_terminals(cell)
        }
        row: List[object] = [comment]
        for n in names:
            for term in ("D", "G", "S", "B"):
                row.append(1 if (n, term) in marked else 0)
        rows.append(row)
    return format_table(headers, rows, title="Table III - defect columns (NAND2)")


def fig4_partial_matrix(limit: int = 8) -> str:
    """Fig. 4(b): the partial CA-matrix of the NAND2 cell (stimuli,
    response and per-transistor activity)."""
    cell = nand2_cell()
    model = generate_ca_model(cell, params=SOI28.electrical)
    matrix = build_matrix(cell, model=model, params=SOI28.electrical,
                          structural_features=False)
    n = cell.n_inputs
    names = matrix.renamed.canonical_names()
    headers = ["stimulus"] + list(matrix.columns[: n + 1 + len(names)])
    rows = []
    for r in range(min(limit, len(matrix.stimuli))):
        word = word_to_string(matrix.stimuli[matrix.row_stimulus[r]])
        rows.append([word] + list(matrix.features[r][: n + 1 + len(names)]))
    return format_table(headers, rows, title="Fig. 4b - partial CA-matrix (NAND2)")


def fig5_cell() -> CellNetlist:
    """The Fig. 5 example: an NMOS network ((N0&(N1|N2))|N3) driving net Y
    through a complementary stage, buffered by an output inverter."""
    spec = CellSpec(
        function="FIG5",
        inputs=("A", "B", "C", "D"),
        output="Z",
        stages=(
            StageSpec(
                out="Y",
                pulldown=parallel(
                    series(Leaf("A"), parallel(Leaf("B"), Leaf("C"))), Leaf("D")
                ),
            ),
            StageSpec(out="Z", pulldown=Leaf("Y")),
        ),
    )
    return synthesize(spec, "FIG5")


def fig5_branch_equations() -> str:
    """Fig. 5: branch equations, anonymized and sorted."""
    cell = fig5_cell()
    renamed = rename_transistors(cell)
    headers = ("branch", "level", "#tr", "exit", "anonymized", "named")
    rows = []
    for b in renamed.branches:
        rows.append(
            (
                b.index,
                b.level,
                b.n_devices,
                b.exit_net,
                b.anon,
                b.equation.named(renamed.mapping),
            )
        )
    return format_table(headers, rows, title="Fig. 5 - branch equations")
