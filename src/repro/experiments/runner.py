"""Run every experiment and write a consolidated report.

Usage::

    python -m repro.experiments [--scale bench] [--output report.txt]

Regenerates, in order: Tables I-III, Figs. 4-6, Table IV.a/b/c, the
Section V.B bands and the Section V.C hybrid study, printing each artifact
and (optionally) writing everything to one report file.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.experiments.analysis import accuracy_bands
from repro.experiments.cache import DEFAULT_SCALE
from repro.experiments.hybrid_study import hybrid_flow_study
from repro.experiments.small_tables import (
    fig4_partial_matrix,
    fig5_branch_equations,
    table1_training_rows,
    table2_activity,
    table3_defect_columns,
)
from repro.experiments.analysis import fig6_equivalence_demo
from repro.experiments.table4 import (
    table4a_same_technology,
    table4bc_cross_technology,
)


def run_all(scale: str = DEFAULT_SCALE, verbose: bool = True) -> List[str]:
    """Run every experiment; returns the rendered artifacts in order."""
    artifacts: List[str] = []

    def emit(text: str) -> None:
        artifacts.append(text)
        if verbose:
            print(text)
            print()

    emit(table1_training_rows())
    emit(table2_activity())
    emit(table3_defect_columns())
    emit(fig4_partial_matrix())
    emit(fig5_branch_equations())
    emit(fig6_equivalence_demo())

    started = time.perf_counter()
    report_a, grid_a = table4a_same_technology(scale)
    emit(grid_a + f"\nmean accuracy {report_a.mean_accuracy():.4f}, "
         f">97%: {report_a.accuracy_fraction_above():.1%}")
    for tech in ("c28", "c40"):
        report, grid = table4bc_cross_technology(tech, scale)
        emit(grid + f"\nmean accuracy {report.mean_accuracy():.4f}, "
             f">97%: {report.accuracy_fraction_above():.1%}, "
             f"uncovered cells: {len(report.uncovered)}")
        emit(accuracy_bands(tech, scale).render())

    emit(hybrid_flow_study(scale).render())
    if verbose:
        print(f"(evaluation experiments took {time.perf_counter() - started:.0f}s)")
    return artifacts


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments")
    parser.add_argument("--scale", default=DEFAULT_SCALE)
    parser.add_argument("--output")
    args = parser.parse_args(argv)
    artifacts = run_all(scale=args.scale)
    if args.output:
        Path(args.output).write_text("\n\n".join(artifacts) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
