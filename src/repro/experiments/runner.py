"""Run every experiment and write a consolidated report.

Usage::

    python -m repro.experiments [--scale bench] [--output report.txt]
                                [--trace run.json] [--log-json run.jsonl]
                                [-v | -q]

Regenerates, in order: Tables I-III, Figs. 4-6, Table IV.a/b/c, the
Section V.B bands and the Section V.C hybrid study, printing each artifact
and (optionally) writing everything to one report file.  Every artifact is
timed: one ``experiment.artifact`` obs event fires per artifact, a timing
table is appended to the artifact list (and hence to the written report),
and ``--trace`` captures the full span timeline of the run.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro import obs
from repro.experiments.analysis import accuracy_bands
from repro.experiments.cache import DEFAULT_SCALE
from repro.experiments.hybrid_study import hybrid_flow_study
from repro.experiments.small_tables import (
    fig4_partial_matrix,
    fig5_branch_equations,
    table1_training_rows,
    table2_activity,
    table3_defect_columns,
)
from repro.experiments.analysis import fig6_equivalence_demo
from repro.experiments.table4 import (
    table4a_same_technology,
    table4bc_cross_technology,
)


def timing_table(timings: List[Tuple[str, float]]) -> str:
    """Fixed-width per-artifact timing table (appended to the report)."""
    width = max([len(label) for label, _ in timings] + [len("artifact")])
    lines = ["artifact timings", f"{'artifact':<{width}}  seconds"]
    for label, seconds in timings:
        lines.append(f"{label:<{width}}  {seconds:8.3f}")
    total = sum(seconds for _, seconds in timings)
    lines.append(f"{'total':<{width}}  {total:8.3f}")
    return "\n".join(lines)


def run_all(scale: str = DEFAULT_SCALE, verbose: bool = True) -> List[str]:
    """Run every experiment; returns the rendered artifacts in order.

    Each artifact is built under an ``experiments.artifact`` span and
    reported as one ``experiment.artifact`` event carrying its duration;
    the final artifact is the timing table over the whole run.
    """
    artifacts: List[str] = []
    timings: List[Tuple[str, float]] = []
    tracer = obs.tracer()

    def emit(label: str, build: Callable[[], str]) -> None:
        started = time.perf_counter()
        with tracer.span("experiments.artifact", artifact=label):
            text = build()
        seconds = time.perf_counter() - started
        timings.append((label, seconds))
        obs.events().info(
            "experiment.artifact", artifact=label, seconds=round(seconds, 4)
        )
        artifacts.append(text)
        if verbose:
            print(text)
            print()

    emit("table1", table1_training_rows)
    emit("table2", table2_activity)
    emit("table3", table3_defect_columns)
    emit("fig4", fig4_partial_matrix)
    emit("fig5", fig5_branch_equations)
    emit("fig6", fig6_equivalence_demo)

    def table4a() -> str:
        report, grid = table4a_same_technology(scale)
        return (
            grid + f"\nmean accuracy {report.mean_accuracy():.4f}, "
            f">97%: {report.accuracy_fraction_above():.1%}"
        )

    emit("table4.a", table4a)

    for tech in ("c28", "c40"):
        def table4bc(tech: str = tech) -> str:
            report, grid = table4bc_cross_technology(tech, scale)
            return (
                grid + f"\nmean accuracy {report.mean_accuracy():.4f}, "
                f">97%: {report.accuracy_fraction_above():.1%}, "
                f"uncovered cells: {len(report.uncovered)}"
            )

        emit(f"table4.{tech}", table4bc)
        emit(f"bands.{tech}", lambda tech=tech: accuracy_bands(tech, scale).render())

    emit("hybrid_study", lambda: hybrid_flow_study(scale).render())

    table = timing_table(timings)
    artifacts.append(table)
    if verbose:
        print(table)
    return artifacts


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments")
    parser.add_argument("--scale", default=DEFAULT_SCALE)
    parser.add_argument("--output")
    parser.add_argument(
        "--trace", metavar="FILE.json",
        help="write the run's span timeline (Chrome-trace JSON; .jsonl for raw spans)",
    )
    parser.add_argument(
        "--log-json", metavar="FILE.jsonl",
        help="append structured obs events to a JSONL file",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="more event output on stderr (-v info, -vv debug)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress artifact printing and non-error events",
    )
    args = parser.parse_args(argv)
    verbosity = -1 if args.quiet else args.verbose
    with obs.session(
        trace_path=args.trace,
        log_json=args.log_json,
        verbosity=verbosity,
        root="experiments.run_all",
        scale=args.scale,
    ):
        kwargs = {"scale": args.scale}
        if args.quiet:
            kwargs["verbose"] = False
        artifacts = run_all(**kwargs)
        if args.output:
            Path(args.output).write_text("\n\n".join(artifacts) + "\n")
            print(f"wrote {args.output}")
    if args.trace:
        print(f"wrote {args.trace}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
