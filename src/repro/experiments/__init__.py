"""Experiment drivers: one regenerator per paper table / figure."""

from repro.experiments.cache import (
    DEFAULT_SCALE,
    cache_path,
    library_with_models,
    paired,
)
from repro.experiments.reporting import (
    format_accuracy_grid,
    format_summary,
    format_table,
)
from repro.experiments.small_tables import (
    fig4_partial_matrix,
    fig5_branch_equations,
    fig5_cell,
    table1_training_rows,
    table2_activity,
    table3_defect_columns,
)
from repro.experiments.table4 import (
    table4a_same_technology,
    table4bc_cross_technology,
)
from repro.experiments.analysis import (
    AccuracyBandReport,
    accuracy_bands,
    fig6_equivalence_demo,
)
from repro.experiments.hybrid_study import HybridStudyResult, hybrid_flow_study

__all__ = [
    "DEFAULT_SCALE",
    "library_with_models",
    "paired",
    "cache_path",
    "format_table",
    "format_accuracy_grid",
    "format_summary",
    "table1_training_rows",
    "table2_activity",
    "table3_defect_columns",
    "fig4_partial_matrix",
    "fig5_branch_equations",
    "fig5_cell",
    "table4a_same_technology",
    "table4bc_cross_technology",
    "accuracy_bands",
    "AccuracyBandReport",
    "fig6_equivalence_demo",
    "hybrid_flow_study",
    "HybridStudyResult",
]
