"""Disk cache of generated CA model libraries.

Conventional generation is the expensive step (it is the very problem the
paper attacks), so experiment drivers generate each (technology, preset)
library once and reuse the CA models from disk afterwards.  Cache entries
are invalidated by a version tag that changes whenever the simulator or
defect semantics change.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.camodel.generate import generate_ca_model
from repro.camodel.io import load_models, save_models
from repro.camodel.model import CAModel
from repro.library.builder import Library, build_preset
from repro.library.technology import get as get_technology
from repro.spice.netlist import CellNetlist

#: bump when generation semantics change (invalidates caches)
CACHE_VERSION = "v3"

DEFAULT_CACHE_DIR = Path(
    os.environ.get("REPRO_CACHE_DIR", Path(__file__).resolve().parents[3] / ".cache")
)

#: scale used by the benchmark harness; override with REPRO_SCALE=small etc.
DEFAULT_SCALE = os.environ.get("REPRO_SCALE", "bench")


def cache_path(tech_name: str, preset: str, cache_dir: Optional[Path] = None) -> Path:
    directory = Path(cache_dir) if cache_dir else DEFAULT_CACHE_DIR
    return directory / f"camodels-{tech_name}-{preset}-{CACHE_VERSION}.json"


def library_with_models(
    tech_name: str,
    preset: str = DEFAULT_SCALE,
    cache_dir: Optional[Path] = None,
    verbose: bool = False,
) -> Tuple[Library, Dict[str, CAModel]]:
    """Build a preset library and its CA models (cached on disk)."""
    library = build_preset(tech_name, preset)
    path = cache_path(tech_name, preset, cache_dir)
    models: Dict[str, CAModel] = {}
    if path.exists():
        for model in load_models(path):
            models[model.cell_name] = model
    missing = [cell for cell in library if cell.name not in models]
    if missing:
        params = get_technology(tech_name).electrical
        for i, cell in enumerate(missing):
            if verbose:
                print(
                    f"[{tech_name}/{preset}] generating {cell.name} "
                    f"({i + 1}/{len(missing)})"
                )
            models[cell.name] = generate_ca_model(cell, params=params)
        save_models(
            [models[cell.name] for cell in library if cell.name in models], path
        )
    return library, models


def paired(library: Library, models: Dict[str, CAModel]) -> List[Tuple[CellNetlist, CAModel]]:
    """(cell, model) pairs for every cached cell of a library."""
    return [(cell, models[cell.name]) for cell in library if cell.name in models]
