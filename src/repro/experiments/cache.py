"""Disk cache of generated CA model libraries.

Conventional generation is the expensive step (it is the very problem the
paper attacks), so experiment drivers generate each (technology, preset,
policy) library once and reuse the CA models from disk afterwards.  Cache
entries are invalidated by a version tag that changes whenever the
simulator or defect semantics change; the stimulus policy is part of the
file name, so models generated under different policies can never be
confused for one another.  Writes go through the atomic
:func:`~repro.camodel.io.save_models` (temp file + ``os.replace``), so a
crash or two concurrent runs cannot leave a torn file that poisons every
later run; an unreadable cache file is treated as absent and regenerated.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.camodel.generate import generate_ca_model
from repro.camodel.io import load_models, save_models
from repro.camodel.model import CAModel
from repro.library.builder import Library, build_preset
from repro.library.technology import get as get_technology
from repro.spice.netlist import CellNetlist

#: bump when generation semantics change (invalidates caches)
CACHE_VERSION = "v3"

DEFAULT_CACHE_DIR = Path(
    os.environ.get("REPRO_CACHE_DIR", Path(__file__).resolve().parents[3] / ".cache")
)

#: scale used by the benchmark harness; override with REPRO_SCALE=small etc.
DEFAULT_SCALE = os.environ.get("REPRO_SCALE", "bench")


def cache_path(
    tech_name: str,
    preset: str,
    cache_dir: Optional[Path] = None,
    policy: str = "auto",
) -> Path:
    directory = Path(cache_dir) if cache_dir else DEFAULT_CACHE_DIR
    return directory / (
        f"camodels-{tech_name}-{preset}-{policy}-{CACHE_VERSION}.json"
    )


def _load_cached_models(path: Path) -> List[CAModel]:
    """Load a cache file, treating any unreadable content as a miss."""
    if not path.exists():
        return []
    try:
        return load_models(path)
    except (ValueError, KeyError, json.JSONDecodeError) as exc:
        obs.events().warning(
            "cache.unreadable",
            path=str(path),
            error=str(exc),
            msg=f"ignoring unreadable CA model cache {path}: {exc}",
        )
        return []


def library_with_models(
    tech_name: str,
    preset: str = DEFAULT_SCALE,
    cache_dir: Optional[Path] = None,
    verbose: bool = False,
    policy: str = "auto",
    parallelism: Optional[int] = None,
) -> Tuple[Library, Dict[str, CAModel]]:
    """Build a preset library and its CA models (cached on disk).

    ``parallelism`` fans the per-defect simulation loop of each generated
    cell out over worker processes (cache misses only; hits are pure IO).
    """
    library = build_preset(tech_name, preset)
    path = cache_path(tech_name, preset, cache_dir, policy=policy)
    models: Dict[str, CAModel] = {}
    for model in _load_cached_models(path):
        models[model.cell_name] = model
    missing = [cell for cell in library if cell.name not in models]
    if missing:
        params = get_technology(tech_name).electrical
        for i, cell in enumerate(missing):
            # verbose=True marks progress callers opted into (shown at -v);
            # the rest is debug-level chatter.
            obs.events().emit(
                "cache.generate",
                level="info" if verbose else "debug",
                technology=tech_name,
                preset=preset,
                cell=cell.name,
                index=i + 1,
                total=len(missing),
                msg=(
                    f"[{tech_name}/{preset}] generating {cell.name} "
                    f"({i + 1}/{len(missing)})"
                ),
            )
            models[cell.name] = generate_ca_model(
                cell, params=params, policy=policy, parallelism=parallelism
            )
        save_models(
            [models[cell.name] for cell in library if cell.name in models], path
        )
        obs.events().debug(
            "cache.write",
            path=str(path),
            models=len(models),
            msg=f"wrote CA model cache {path} ({len(models)} models)",
        )
    return library, models


def paired(library: Library, models: Dict[str, CAModel]) -> List[Tuple[CellNetlist, CAModel]]:
    """(cell, model) pairs for every cached cell of a library."""
    return [(cell, models[cell.name]) for cell in library if cell.name in models]
