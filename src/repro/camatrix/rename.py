"""Canonical transistor renaming (Sections III.B / III.C of the paper).

Two cells with the same transistor structure receive identical transistor
names regardless of the names and ordering in their source netlists:

1. golden-simulate the cell and compute every device's activity value;
2. decompose into branches and canonicalize each branch equation
   (operands sorted by anonymized form, ties by ascending activity);
3. sort branches by (level, device count, anonymized equation);
4. walk the sorted branches' equations and hand out ``N0, N1, ...`` /
   ``P0, P1, ...`` in traversal order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.camatrix.activity import activity_values
from repro.camatrix.branches import Branch, extract_branches, leaf_descriptors
from repro.camatrix.pins import canonical_pin_order
from repro.library.technology import ElectricalParams
from repro.simulation.engine import CellSimulator
from repro.spice.netlist import CellNetlist, Transistor


@dataclass
class RenamedCell:
    """Result of canonical renaming."""

    original: CellNetlist
    #: netlist with canonical device names, devices in canonical order
    cell: CellNetlist
    #: old name -> canonical name
    mapping: Dict[str, str]
    #: canonical branch decomposition (device objects carry old names)
    branches: List[Branch]
    #: canonical name -> activity value
    activity: Dict[str, int]
    #: input pins in canonical (structural) order
    pin_order: List[str] = field(default_factory=list)
    #: canonical name -> (branch level, stack depth, parallel width)
    structure: Dict[str, Tuple[int, int, int]] = field(default_factory=dict)

    @property
    def signature(self) -> Tuple[str, ...]:
        """Structural signature: ordered anonymized branch equations.

        Identical signatures mean identical transistor structure — the
        test the hybrid flow's structural analysis performs (Section V.C).
        """
        return tuple(b.anon for b in self.branches)

    def canonical_names(self) -> List[str]:
        """All canonical device names, N0..Nk then P0..Pm."""
        n_names = sorted(
            (name for name in self.mapping.values() if name.startswith("N")),
            key=lambda s: int(s[1:]),
        )
        p_names = sorted(
            (name for name in self.mapping.values() if name.startswith("P")),
            key=lambda s: int(s[1:]),
        )
        return n_names + p_names

    def equations(self) -> List[str]:
        """Branch equations rendered with canonical names."""
        return [b.equation.named(self.mapping) for b in self.branches]


def rename_transistors(
    cell: CellNetlist,
    params: Optional[ElectricalParams] = None,
    simulator: Optional[CellSimulator] = None,
) -> RenamedCell:
    """Compute the canonical renaming of *cell*."""
    sim = simulator or CellSimulator(cell, params=params)
    # Pass 1 (structure only): branch shapes fix the canonical pin order;
    # activity values are then computed against that order, breaking the
    # pins -> activity -> renaming circularity deterministically.
    structural = extract_branches(cell, {t.name: 0 for t in cell.transistors})
    pin_order = canonical_pin_order(cell, structural)
    activity = activity_values(cell, simulator=sim, pin_order=pin_order)
    branches = extract_branches(cell, activity)

    mapping: Dict[str, str] = {}
    n_counter = 0
    p_counter = 0
    for branch in branches:
        for device in branch.equation.devices():
            if device.name in mapping:
                continue  # non-SP fallback can repeat a device
            if device.is_nmos:
                mapping[device.name] = f"N{n_counter}"
                n_counter += 1
            else:
                mapping[device.name] = f"P{p_counter}"
                p_counter += 1

    missing = [t.name for t in cell.transistors if t.name not in mapping]
    for name in missing:  # devices outside every equation (degenerate)
        device = cell.transistor(name)
        if device.is_nmos:
            mapping[name] = f"N{n_counter}"
            n_counter += 1
        else:
            mapping[name] = f"P{p_counter}"
            p_counter += 1

    ordered: List[Transistor] = []
    seen = set()
    for branch in branches:
        for device in branch.equation.devices():
            if device.name not in seen:
                seen.add(device.name)
                ordered.append(device.renamed(mapping[device.name]))
    for name in missing:
        ordered.append(cell.transistor(name).renamed(mapping[name]))

    structure: Dict[str, Tuple[int, int, int]] = {}
    for branch in branches:
        descriptors = leaf_descriptors(branch.equation)
        for old_name, (depth, width) in descriptors.items():
            structure[mapping[old_name]] = (branch.level, depth, width)
    for name in missing:
        structure.setdefault(mapping[name], (0, 0, 0))

    canonical = cell.with_transistors(ordered)
    return RenamedCell(
        original=cell,
        cell=canonical,
        mapping=mapping,
        branches=branches,
        activity={mapping[old]: value for old, value in activity.items()},
        pin_order=pin_order,
        structure=structure,
    )
