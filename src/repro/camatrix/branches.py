"""Branch extraction and branch equations (Section III.B of the paper).

A *branch* is a maximal group of transistors connected through their
drain/source terminals (connectivity through non-rail nets only); its
*exit* is the net the branch drives.  The *branch equation* describes how
the branch's transistors connect between the exit and the power rails,
with '&' for series and '|' for parallel composition; the *anonymized*
equation replaces every NMOS by ``1n`` and every PMOS by ``1p``.

Examples reproduced from the paper:

* an output inverter has the equation ``(1n|1p)``;
* the NMOS network ``(N0&(N1|N2))|N3`` of Fig. 5 anonymizes to
  ``((1n&(1n|1n))|1n)`` as its pull-down contribution.

Within '&'/'|' groups, operands are ordered canonically: primarily by
their anonymized sub-equation, with ties between structurally identical
operands (e.g. parallel transistors) broken by ascending activity value
(Section III.C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.spice.netlist import CellNetlist, Transistor


class BranchError(ValueError):
    """Raised when a cell's structure cannot be decomposed into branches."""


# ----------------------------------------------------------------------
# Equation nodes (leaves are devices)
# ----------------------------------------------------------------------

class EqNode:
    """A branch-equation node."""

    def devices(self) -> List[Transistor]:
        """Devices in (current) traversal order."""
        raise NotImplementedError

    def anon(self) -> str:
        """Canonical anonymized form ('1n'/'1p' leaves, sorted operands)."""
        raise NotImplementedError

    def canonical(self, activity: Mapping[str, int]) -> "EqNode":
        """Operands sorted by (anonymized form, activity values)."""
        raise NotImplementedError

    def named(self, renaming: Optional[Mapping[str, str]] = None) -> str:
        """Readable form with device names (optionally renamed)."""
        raise NotImplementedError

    def n_devices(self) -> int:
        return len(self.devices())

    def _sort_key(self, activity: Mapping[str, int]) -> Tuple:
        return (self.anon(), tuple(activity[t.name] for t in self.devices()))


@dataclass(frozen=True)
class EqLeaf(EqNode):
    """A single transistor."""

    device: Transistor

    def devices(self) -> List[Transistor]:
        return [self.device]

    def anon(self) -> str:
        return "1n" if self.device.is_nmos else "1p"

    def canonical(self, activity: Mapping[str, int]) -> "EqNode":
        return self

    def named(self, renaming: Optional[Mapping[str, str]] = None) -> str:
        name = self.device.name
        if renaming:
            name = renaming.get(name, name)
        return name


class _EqGroup(EqNode):
    symbol = "?"

    def __init__(self, *children: EqNode) -> None:
        flattened: List[EqNode] = []
        for child in children:
            if type(child) is type(self):
                flattened.extend(child.children)  # type: ignore[attr-defined]
            else:
                flattened.append(child)
        if len(flattened) < 2:
            raise BranchError("equation group needs at least two operands")
        self.children: Tuple[EqNode, ...] = tuple(flattened)

    def devices(self) -> List[Transistor]:
        out: List[Transistor] = []
        for child in self.children:
            out.extend(child.devices())
        return out

    def anon(self) -> str:
        parts = sorted(child.anon() for child in self.children)
        return "(" + self.symbol.join(parts) + ")"

    def canonical(self, activity: Mapping[str, int]) -> "EqNode":
        children = [child.canonical(activity) for child in self.children]
        children.sort(key=lambda c: c._sort_key(activity))
        return type(self)(*children)

    def named(self, renaming: Optional[Mapping[str, str]] = None) -> str:
        return (
            "("
            + self.symbol.join(child.named(renaming) for child in self.children)
            + ")"
        )


class EqSeries(_EqGroup):
    """Series composition ('&')."""

    symbol = "&"


class EqParallel(_EqGroup):
    """Parallel composition ('|')."""

    symbol = "|"


def min_conduction_path(node: EqNode) -> int:
    """Fewest devices that must conduct for *node* to conduct."""
    if isinstance(node, EqLeaf):
        return 1
    if isinstance(node, EqSeries):
        return sum(min_conduction_path(c) for c in node.children)
    return min(min_conduction_path(c) for c in node.children)


def leaf_descriptors(node: EqNode) -> Dict[str, Tuple[int, int]]:
    """Per-device (stack depth, parallel width) structural descriptors.

    *stack depth* is the length of the shortest conducting path through
    the device.  *parallel width* is the number of structurally identical
    parallel copies along the device's path: at every parallel group on
    the way down, the width multiplies by how many siblings share the
    anonymized form of the subtree being entered.

    The pair separates cells that the raw activity columns cannot (a
    NAND2's and a NOR2's rows can otherwise coincide feature-for-feature
    with opposite labels), while being *identical* across the merged and
    split drive configurations of Fig. 6 — so that equivalence keeps
    transferring across libraries.
    """
    out: Dict[str, Tuple[int, int]] = {}

    def walk(n: EqNode, series_extra: int, width: int) -> None:
        if isinstance(n, EqLeaf):
            out[n.device.name] = (1 + series_extra, width)
            return
        if isinstance(n, EqSeries):
            totals = [min_conduction_path(c) for c in n.children]
            whole = sum(totals)
            for child, own in zip(n.children, totals):
                walk(child, series_extra + whole - own, width)
            return
        # Parallel group: multiply width by the count of structurally
        # identical siblings of each entered subtree.
        anon_counts: Dict[str, int] = {}
        for child in n.children:
            key = child.anon()
            anon_counts[key] = anon_counts.get(key, 0) + 1
        for child in n.children:
            walk(child, series_extra, width * anon_counts[child.anon()])

    walk(node, 0, 1)
    return out


# ----------------------------------------------------------------------
# Two-terminal series-parallel reduction
# ----------------------------------------------------------------------

def sp_reduce(
    devices: Sequence[Transistor], source: str, target: str
) -> Optional[EqNode]:
    """Reduce the channel network of *devices* between two nets.

    Returns the equation of the network between *source* and *target*, or
    None when the network is not series-parallel (callers fall back to
    path enumeration).
    """
    edges: List[Tuple[str, str, EqNode]] = [
        (t.drain, t.source, EqLeaf(t)) for t in devices
    ]
    while True:
        changed = False
        # Parallel: merge multi-edges between the same net pair.
        buckets: Dict[frozenset, List[int]] = {}
        for i, (u, v, _e) in enumerate(edges):
            if u != v:
                buckets.setdefault(frozenset((u, v)), []).append(i)
        for indices in buckets.values():
            if len(indices) > 1:
                u, v, _ = edges[indices[0]]
                merged = EqParallel(*(edges[i][2] for i in indices))
                edges = [e for i, e in enumerate(edges) if i not in set(indices)]
                edges.append((u, v, merged))
                changed = True
                break
        if changed:
            continue
        # Series: contract internal nodes of degree exactly two.
        degree: Dict[str, List[int]] = {}
        for i, (u, v, _e) in enumerate(edges):
            degree.setdefault(u, []).append(i)
            degree.setdefault(v, []).append(i)
        for node, incident in degree.items():
            if node in (source, target) or len(incident) != 2:
                continue
            i, j = incident
            if i == j:
                continue
            u1, v1, e1 = edges[i]
            u2, v2, e2 = edges[j]
            far1 = v1 if u1 == node else u1
            far2 = v2 if u2 == node else u2
            merged_edge = (far1, far2, EqSeries(e1, e2))
            edges = [e for k, e in enumerate(edges) if k not in (i, j)]
            edges.append(merged_edge)
            changed = True
            break
        if changed:
            continue
        break

    live = [(u, v, e) for u, v, e in edges if u != v]
    if len(live) == 1 and {live[0][0], live[0][1]} == {source, target}:
        return live[0][2]
    return None


def path_expression(
    devices: Sequence[Transistor], source: str, target: str
) -> Optional[EqNode]:
    """Fallback equation: OR over simple conduction paths (non-SP networks).

    A device can appear on several paths; callers that need each device
    exactly once (renaming) deduplicate by first traversal occurrence.
    """
    adjacency: Dict[str, List[Tuple[str, Transistor]]] = {}
    for t in devices:
        adjacency.setdefault(t.drain, []).append((t.source, t))
        adjacency.setdefault(t.source, []).append((t.drain, t))

    paths: List[List[Transistor]] = []

    def walk(node: str, seen_nets: Set[str], seen_devs: Set[str], trail: List[Transistor]) -> None:
        if node == target:
            paths.append(list(trail))
            return
        for neighbor, device in adjacency.get(node, ()):
            if neighbor in seen_nets or device.name in seen_devs:
                continue
            trail.append(device)
            walk(neighbor, seen_nets | {neighbor}, seen_devs | {device.name}, trail)
            trail.pop()

    walk(source, {source}, set(), [])
    if not paths:
        return None
    terms: List[EqNode] = []
    for path in paths:
        if len(path) == 1:
            terms.append(EqLeaf(path[0]))
        else:
            terms.append(EqSeries(*(EqLeaf(t) for t in path)))
    if len(terms) == 1:
        return terms[0]
    return EqParallel(*terms)


# ----------------------------------------------------------------------
# Branch extraction
# ----------------------------------------------------------------------

@dataclass
class Branch:
    """One branch of a cell, with its equation and sorting metadata."""

    devices: List[Transistor]
    exit_net: str
    equation: EqNode
    level: int = 0
    index: int = -1

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    @property
    def anon(self) -> str:
        return self.equation.anon()


def _channel_groups(cell: CellNetlist) -> List[List[Transistor]]:
    """Partition devices into channel-connected groups (rails excluded)."""
    rails = set(cell.rails)
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        while parent.setdefault(x, x) != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for t in cell.transistors:
        key = f"dev:{t.name}"
        for net in t.channel_nets():
            if net not in rails:
                union(key, f"net:{net}")

    groups: Dict[str, List[Transistor]] = {}
    for t in cell.transistors:
        groups.setdefault(find(f"dev:{t.name}"), []).append(t)
    return list(groups.values())


def _pick_exit(group: Sequence[Transistor], cell: CellNetlist) -> str:
    """The net a branch drives: the one loading gates or the cell output."""
    rails = set(cell.rails)
    candidate_nets: Set[str] = set()
    member_names = {t.name for t in group}
    for t in group:
        candidate_nets.update(n for n in t.channel_nets() if n not in rails)
    if not candidate_nets:
        raise BranchError(
            f"branch {sorted(member_names)} touches only rails in {cell.name}"
        )

    outputs = set(cell.outputs)

    def score(net: str) -> Tuple:
        gate_loads = sum(
            1
            for t in cell.transistors
            if t.gate == net and t.name not in member_names
        )
        degree = sum(1 for t in group if net in t.channel_nets())
        return (net in outputs, gate_loads, degree, net)

    return max(sorted(candidate_nets), key=score)


def _branch_equation(
    group: Sequence[Transistor], exit_net: str, cell: CellNetlist
) -> EqNode:
    """Equation: parallel combination of exit->rail path expressions.

    Pull-down paths run through NMOS devices to ground, pull-up paths
    through PMOS devices to power (complementary CMOS assumption; a
    non-series-parallel side falls back to path enumeration).
    """
    parts: List[EqNode] = []
    for subset, rail in (
        ([t for t in group if t.is_nmos], cell.ground),
        ([t for t in group if t.is_pmos], cell.power),
    ):
        if not subset:
            continue
        expr = sp_reduce(subset, exit_net, rail)
        if expr is None:
            expr = path_expression(subset, exit_net, rail)
        if expr is None:
            raise BranchError(
                f"cannot derive equation of branch driving {exit_net} "
                f"in {cell.name}"
            )
        parts.append(expr)
    if not parts:
        raise BranchError(f"empty branch driving {exit_net} in {cell.name}")
    if len(parts) == 1:
        return parts[0]
    return EqParallel(*parts)


def _assign_levels(branches: List[Branch], cell: CellNetlist) -> None:
    """Level-1 branches drive the cell output; level-k+1 branches drive the
    gates of level-k branch transistors (Section III.B)."""
    by_exit: Dict[str, Branch] = {b.exit_net: b for b in branches}
    outputs = set(cell.outputs)
    for b in branches:
        b.level = 0
    frontier = [b for b in branches if b.exit_net in outputs]
    for b in frontier:
        b.level = 1
    while frontier:
        next_frontier: List[Branch] = []
        for branch in frontier:
            gate_nets = {t.gate for t in branch.devices}
            for net in gate_nets:
                driver = by_exit.get(net)
                if driver is not None and driver.level == 0:
                    driver.level = branch.level + 1
                    next_frontier.append(driver)
        frontier = next_frontier
    # Anything unreachable from the output (unusual) sorts last.
    worst = max((b.level for b in branches), default=0)
    for b in branches:
        if b.level == 0:
            b.level = worst + 1


def extract_branches(
    cell: CellNetlist, activity: Mapping[str, int]
) -> List[Branch]:
    """Full branch decomposition, canonically sorted and indexed.

    Branches are sorted by (level ascending, device count ascending,
    anonymized equation alphabetical) — the paper's three criteria — and
    each branch's equation is canonicalized with *activity* values
    breaking ties between structurally identical operands.
    """
    branches: List[Branch] = []
    for group in _channel_groups(cell):
        exit_net = _pick_exit(group, cell)
        equation = _branch_equation(group, exit_net, cell).canonical(activity)
        branches.append(Branch(devices=list(group), exit_net=exit_net, equation=equation))
    _assign_levels(branches, cell)
    # Structurally identical branches (e.g. the two input inverters of an
    # XOR cell) tie on all three of the paper's criteria; their devices'
    # activity values break the tie, mirroring Section III.C.
    branches.sort(
        key=lambda b: (
            b.level,
            b.n_devices,
            b.anon,
            tuple(activity[t.name] for t in b.equation.devices()),
        )
    )
    for i, branch in enumerate(branches):
        branch.index = i
    return branches
