"""Canonical ordering of cell input pins.

The CA-matrix's stimulus columns are positional, so cells can only share
training data if "the same" pin occupies the same position.  Libraries name
pins differently (``A,B`` vs ``IN1,IN2``) but list them in a consistent
functional order in the subcircuit header; this module additionally sorts
pins by a *structural* signature (which branches/device types they gate) so
that a permuted port list still canonicalizes.  Fully symmetric pins (the
two inputs of a NAND2) keep their declared relative order — any consistent
convention works for them because the detection table is permutation
symmetric.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.camatrix.branches import Branch
from repro.spice.netlist import CellNetlist


def pin_signature(
    pin: str, cell: CellNetlist, branches: List[Branch]
) -> Tuple[Tuple[int, int, str, str], ...]:
    """Structural signature of one input pin.

    The sorted tuple of (branch level, branch size, branch anonymized
    equation, device type) over the devices the pin gates.  Identical for
    pins in identical structural roles, independent of any names.
    """
    branch_of = {}
    for branch in branches:
        for device in branch.devices:
            branch_of[device.name] = branch
    rows = []
    for device in cell.transistors:
        if device.gate == pin:
            branch = branch_of.get(device.name)
            if branch is None:
                rows.append((10**6, 0, "", device.ttype))
            else:
                rows.append(
                    (branch.level, branch.n_devices, branch.anon, device.ttype)
                )
    return tuple(sorted(rows))


def canonical_pin_order(cell: CellNetlist, branches: List[Branch]) -> List[str]:
    """Input pins in canonical order (stable structural sort)."""
    signatures = {pin: pin_signature(pin, cell, branches) for pin in cell.inputs}
    return sorted(cell.inputs, key=lambda pin: signatures[pin])


def reorder_word(
    word: Sequence[str], declared: List[str], canonical: List[str]
) -> Tuple[str, ...]:
    """Permute a stimulus word from declared-pin order to canonical order."""
    index = {pin: i for i, pin in enumerate(declared)}
    return tuple(word[index[pin]] for pin in canonical)
