"""Active / passive transistor identification (Section III.A and III.C).

A transistor's *activity* under a stimulus is derived from the golden
simulation of its gate net:

* NMOS: active (1) when the gate is at logic 1, passive (0) at logic 0;
  a rising gate is "switching to active" (R), a falling one "switching to
  passive" (F).
* PMOS: the opposite sense — the paper marks PMOS activity values with a
  ``'-'`` prefix; numerically we invert the gate waveform so that 1 always
  means conducting.

The *activity value* (Section III.C) is the 2^n-bit integer whose MSB is
the device's activity under stimulus (0,...,0) and whose LSB is the
activity under (1,...,1): the tool the renaming step uses to disambiguate
parallel transistors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.library.technology import ElectricalParams
from repro.logic.fourval import V4
from repro.camodel.stimuli import Word
from repro.simulation.engine import CellSimulator
from repro.spice.netlist import CellNetlist, Transistor


def gate_activity(device: Transistor, gate_symbol: V4) -> V4:
    """Activity symbol of *device* given its gate net's waveform symbol."""
    return gate_symbol if device.is_nmos else gate_symbol.inverted


def activity_symbols(
    cell: CellNetlist,
    words: Sequence[Word],
    simulator: Optional[CellSimulator] = None,
    params: Optional[ElectricalParams] = None,
) -> Dict[str, List[V4]]:
    """Per-device activity waveform for every stimulus word.

    Uses a single golden simulation per word ("a single defect-free
    (golden) electrical simulation of each cell", Section III.A).
    """
    sim = simulator or CellSimulator(cell, params=params)
    out: Dict[str, List[V4]] = {t.name: [] for t in cell.transistors}
    for word in words:
        waveforms = sim.net_waveforms(word)
        for t in cell.transistors:
            out[t.name].append(gate_activity(t, waveforms[t.gate]))
    return out


def activity_values(
    cell: CellNetlist,
    simulator: Optional[CellSimulator] = None,
    params: Optional[ElectricalParams] = None,
    pin_order: Optional[Sequence[str]] = None,
) -> Dict[str, int]:
    """The 2^n-bit activity value of every device (Table II of the paper).

    Bit significance decreases with increasing binary value of the input
    stimulus; "active" contributes a 1 only when the gate value is a
    definite logic level (golden simulations of combinational cells never
    produce X, so this is exact).

    *pin_order* fixes which pin owns which stimulus bit (defaults to the
    declared input order); cross-library invariance requires the canonical
    pin order of :mod:`repro.camatrix.pins`.
    """
    import itertools

    sim = simulator or CellSimulator(cell, params=params)
    pins = list(pin_order) if pin_order is not None else list(cell.inputs)
    if sorted(pins) != sorted(cell.inputs):
        raise ValueError(f"pin_order {pins} does not match inputs {cell.inputs}")
    position = {pin: i for i, pin in enumerate(pins)}
    values: Dict[str, int] = {t.name: 0 for t in cell.transistors}
    for bits in itertools.product((0, 1), repeat=len(pins)):
        vector = tuple(bits[position[pin]] for pin in cell.inputs)
        codes = sim.static_net_codes(vector)
        for t in cell.transistors:
            gate = codes[t.gate]
            active = gate == 1 if t.is_nmos else gate == 0
            values[t.name] = (values[t.name] << 1) | int(active)
    return values
