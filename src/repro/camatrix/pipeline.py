"""End-to-end CA-matrix pipeline helpers (Fig. 3 of the paper).

Wraps the per-cell steps — CA model rewrite, activity identification,
transistor renaming, matrix creation — and the grouping logic that pools
cells with equal (#inputs, #transistors) into training sets.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.camatrix.matrix import CAMatrix, build_matrix
from repro.camodel.model import CAModel
from repro.library.technology import ElectricalParams
from repro.spice.netlist import CellNetlist

GroupKey = Tuple[int, int]


def training_matrix(
    cell: CellNetlist,
    model: CAModel,
    params: Optional[ElectricalParams] = None,
) -> CAMatrix:
    """Labelled CA-matrix from an existing CA model (training path)."""
    with obs.tracer().span("camatrix.build", cell=cell.name, labelled=True):
        return build_matrix(cell, model=model, params=params)


def inference_matrix(
    cell: CellNetlist,
    params: Optional[ElectricalParams] = None,
    policy: str = "auto",
) -> CAMatrix:
    """Unlabelled CA-matrix for a cell to characterize (inference path)."""
    with obs.tracer().span("camatrix.build", cell=cell.name, labelled=False):
        return build_matrix(cell, model=None, params=params, policy=policy)


def group_matrices(
    matrices: Iterable[CAMatrix],
) -> Dict[GroupKey, List[CAMatrix]]:
    """Pool matrices by (#inputs, #transistors) — the paper's grouping."""
    groups: Dict[GroupKey, List[CAMatrix]] = {}
    for m in matrices:
        groups.setdefault(m.group_key, []).append(m)
    return groups


def stack(matrices: Sequence[CAMatrix]) -> Tuple[np.ndarray, np.ndarray]:
    """Stack labelled matrices of one group into (X, y).

    Raises when matrices are column-incompatible (different group) or
    unlabelled.
    """
    if not matrices:
        raise ValueError("nothing to stack")
    reference = matrices[0]
    for m in matrices[1:]:
        if m.group_key != reference.group_key:
            raise ValueError(
                f"group mismatch: {m.cell_name} {m.group_key} vs "
                f"{reference.cell_name} {reference.group_key}"
            )
        if m.n_features != reference.n_features:
            raise ValueError(
                f"feature-width mismatch: {m.cell_name} has {m.n_features}, "
                f"expected {reference.n_features}"
            )
    for m in matrices:
        if m.labels is None:
            raise ValueError(f"matrix of {m.cell_name} is unlabelled")
    features = np.vstack([m.features for m in matrices])
    labels = np.concatenate([m.labels for m in matrices])
    return features, labels
