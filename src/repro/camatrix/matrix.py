"""CA-matrix assembly (Table I of the paper).

One row per (stimulus, defect); columns:

* ``IN<i>`` — the four-valued stimulus symbol on canonical pin *i*
  (coded 0/1/2/3 for 0/1/R/F);
* ``RESP`` — the golden cell response (the expected value the tester
  compares against);
* one activity column per canonical transistor (``N0..`` then ``P0..``):
  NMOS coded 0/1/2/3, PMOS coded with the paper's '-' mark as
  ``-(code+1)`` (-1..-4) so conducting PMOS and NMOS stay distinguishable;
* four defect-description columns per canonical transistor
  (``N0_D, N0_G, N0_S, N0_B, ...``) — '1' marks a terminal affected by the
  row's defect;
* the label: 1 when the defect is detected by the stimulus.

Cells with equal (#inputs, #transistors) produce column-compatible
matrices, which is the paper's training-group criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.camatrix.activity import gate_activity
from repro.camatrix.pins import reorder_word
from repro.camatrix.rename import RenamedCell, rename_transistors
from repro.camodel.model import CAModel
from repro.camodel.stimuli import Word, stimuli as make_stimuli
from repro.camodel.generate import resolve_policy
from repro.defects.model import Defect
from repro.defects.universe import default_universe
from repro.library.technology import ElectricalParams
from repro.logic.fourval import V4, V4_CODE
from repro.simulation.engine import CellSimulator
from repro.spice.netlist import TERMINALS, CellNetlist

#: the "free" (defect-less) rows of Table I carry this defect index
FREE_ROW = -1


def encode_symbol(symbol: V4) -> int:
    """Integer code of a four-valued symbol (X becomes -128)."""
    return V4_CODE[symbol]


def encode_activity(symbol: V4, is_nmos: bool) -> int:
    """Activity code; PMOS values carry the paper's '-' mark."""
    code = V4_CODE[symbol]
    if code < 0:  # X never appears in golden activity, but stay total
        return code
    return code if is_nmos else -(code + 1)


@dataclass
class CAMatrix:
    """The ML-ready matrix of one cell."""

    cell_name: str
    technology: str
    group_key: Tuple[int, int]
    columns: List[str]
    features: np.ndarray
    labels: Optional[np.ndarray]
    #: defect index per row (FREE_ROW for defect-free rows)
    row_defect: np.ndarray
    #: stimulus index per row
    row_stimulus: np.ndarray
    renamed: RenamedCell
    stimuli: List[Word]
    defects: List[Defect]
    #: the cell output this matrix characterizes
    output: str = ""

    @property
    def n_rows(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    def labelled(self) -> bool:
        return self.labels is not None

    def rows_of_defect(self, defect_index: int) -> np.ndarray:
        """Row positions belonging to one defect."""
        return np.nonzero(self.row_defect == defect_index)[0]

    def to_model(self, labels: Optional[np.ndarray] = None) -> CAModel:
        """Reassemble a CA model from (predicted) labels.

        The inverse of matrix creation: labels for the defect rows are
        reshaped back into a (defects x stimuli) detection table — this is
        how an ML prediction becomes "a new CA model for a given standard
        cell" (Section II.B).
        """
        values = labels if labels is not None else self.labels
        if values is None:
            raise ValueError("no labels available to build a CA model from")
        values = np.asarray(values).astype(np.int8)
        detection = np.zeros((len(self.defects), len(self.stimuli)), dtype=np.int8)
        for row in range(self.n_rows):
            d = self.row_defect[row]
            if d != FREE_ROW:
                detection[d, self.row_stimulus[row]] = values[row]
        port = self.output or self.renamed.original.outputs[0]
        golden_sim = CellSimulator(self.renamed.original)
        golden = [golden_sim.output_response(w, output=port) for w in self.stimuli]
        return CAModel(
            cell_name=self.cell_name,
            technology=self.technology,
            inputs=tuple(self.renamed.original.inputs),
            output=port,
            stimuli=list(self.stimuli),
            golden=golden,
            defects=list(self.defects),
            detection=detection,
        )


def matrix_columns(
    n_inputs: int,
    canonical_names: Sequence[str],
    structural_features: bool = True,
) -> List[str]:
    """Column names for a group with the given shape."""
    columns = [f"IN{i}" for i in range(n_inputs)]
    columns.append("RESP")
    columns.extend(canonical_names)
    if structural_features:
        for name in canonical_names:
            columns.extend((f"{name}_LVL", f"{name}_SD", f"{name}_PW"))
    for name in canonical_names:
        columns.extend(f"{name}_{term}" for term in TERMINALS)
    return columns


def build_matrix(
    cell: CellNetlist,
    model: Optional[CAModel] = None,
    params: Optional[ElectricalParams] = None,
    policy: str = "auto",
    universe: Optional[Sequence[Defect]] = None,
    include_free_rows: bool = True,
    structural_features: bool = True,
    output: Optional[str] = None,
    renamed: Optional[RenamedCell] = None,
) -> CAMatrix:
    """Build the CA-matrix of one cell.

    With *model* (a generated CA model) the matrix is labelled training
    data; without it, the matrix covers the requested defect universe with
    ``labels=None`` — the "new data" of the inference path (Fig. 2).

    *structural_features* adds the per-device (level, stack depth,
    parallel width) descriptor columns.  The paper's matrix carries only
    stimuli, responses, activity and defect location; those features leave
    rows of different functions in one group occasionally
    indistinguishable but oppositely labelled, capping accuracy.  The
    descriptors (derived from the branch equations the renaming step
    already computes) remove that ambiguity; disable them to measure the
    paper-faithful ablation.
    """
    simulator = CellSimulator(cell, params=params)
    renamed = renamed or rename_transistors(cell, params=params, simulator=simulator)

    port = output or (model.output if model is not None else cell.outputs[0])
    if port not in cell.outputs:
        raise ValueError(f"{port!r} is not an output of {cell.name}")
    if model is not None:
        words = list(model.stimuli)
        defects = list(model.defects)
        detection = model.detection
        golden = list(model.golden)
    else:
        words = make_stimuli(cell.n_inputs, resolve_policy(cell.n_inputs, policy))
        defects = (
            list(universe) if universe is not None else default_universe(cell)
        )
        detection = None
        golden = [simulator.output_response(w, output=port) for w in words]

    canonical_names = renamed.canonical_names()
    device_by_new = {
        renamed.mapping[t.name]: t for t in renamed.original.transistors
    }
    columns = matrix_columns(
        cell.n_inputs, canonical_names, structural_features=structural_features
    )

    # --- per-stimulus block: inputs, response, activity -----------------
    n_inputs = cell.n_inputs
    n_devices = len(canonical_names)
    n_structural = 3 * n_devices if structural_features else 0
    base = np.zeros(
        (len(words), n_inputs + 1 + n_devices + n_structural), dtype=np.int8
    )
    declared = list(cell.inputs)
    for s, word in enumerate(words):
        reordered = reorder_word(word, declared, renamed.pin_order)
        for i, symbol in enumerate(reordered):
            base[s, i] = encode_symbol(symbol)
        base[s, n_inputs] = encode_symbol(golden[s])
        waveforms = simulator.net_waveforms(word)
        for d, name in enumerate(canonical_names):
            device = device_by_new[name]
            symbol = gate_activity(device, waveforms[device.gate])
            base[s, n_inputs + 1 + d] = encode_activity(symbol, device.is_nmos)
    if structural_features:
        start = n_inputs + 1 + n_devices
        for d, name in enumerate(canonical_names):
            level, depth, width = renamed.structure.get(name, (0, 0, 0))
            base[:, start + 3 * d] = min(level, 127)
            base[:, start + 3 * d + 1] = min(depth, 127)
            base[:, start + 3 * d + 2] = min(width, 127)

    # --- defect one-hot blocks ------------------------------------------
    terminal_col = {}
    offset = n_inputs + 1 + n_devices + n_structural
    for d, name in enumerate(canonical_names):
        for t_i, term in enumerate(TERMINALS):
            terminal_col[(name, term)] = offset + 4 * d + t_i

    defect_blocks = np.zeros((len(defects), 4 * n_devices), dtype=np.int8)
    for k, defect in enumerate(defects):
        for old_name, term in defect.affected_terminals(renamed.original):
            new_name = renamed.mapping[old_name]
            defect_blocks[k, terminal_col[(new_name, term)] - offset] = 1

    # --- assemble rows ----------------------------------------------------
    blocks: List[np.ndarray] = []
    row_defect: List[np.ndarray] = []
    row_stimulus: List[np.ndarray] = []
    stim_index = np.arange(len(words), dtype=np.int32)

    if include_free_rows:
        free = np.hstack(
            [base, np.zeros((len(words), 4 * n_devices), dtype=np.int8)]
        )
        blocks.append(free)
        row_defect.append(np.full(len(words), FREE_ROW, dtype=np.int32))
        row_stimulus.append(stim_index)

    for k in range(len(defects)):
        block = np.hstack(
            [base, np.tile(defect_blocks[k], (len(words), 1))]
        )
        blocks.append(block)
        row_defect.append(np.full(len(words), k, dtype=np.int32))
        row_stimulus.append(stim_index)

    features = np.vstack(blocks)
    labels: Optional[np.ndarray] = None
    if detection is not None:
        parts: List[np.ndarray] = []
        if include_free_rows:
            parts.append(np.zeros(len(words), dtype=np.int8))
        for k in range(len(defects)):
            parts.append(detection[k].astype(np.int8))
        labels = np.concatenate(parts)

    return CAMatrix(
        cell_name=cell.name,
        technology=cell.technology,
        group_key=cell.group_key,
        columns=columns,
        features=features,
        labels=labels,
        row_defect=np.concatenate(row_defect),
        row_stimulus=np.concatenate(row_stimulus),
        renamed=renamed,
        stimuli=words,
        defects=defects,
        output=port,
    )
