"""CA-matrix construction: renaming, activity, encoding (paper core)."""

from repro.camatrix.activity import activity_symbols, activity_values, gate_activity
from repro.camatrix.branches import (
    Branch,
    BranchError,
    EqLeaf,
    EqNode,
    EqParallel,
    EqSeries,
    extract_branches,
    path_expression,
    sp_reduce,
)
from repro.camatrix.pins import canonical_pin_order, pin_signature, reorder_word
from repro.camatrix.rename import RenamedCell, rename_transistors
from repro.camatrix.matrix import (
    CAMatrix,
    FREE_ROW,
    build_matrix,
    encode_activity,
    encode_symbol,
    matrix_columns,
)
from repro.camatrix.pipeline import (
    group_matrices,
    inference_matrix,
    stack,
    training_matrix,
)

__all__ = [
    "activity_values",
    "activity_symbols",
    "gate_activity",
    "Branch",
    "BranchError",
    "EqNode",
    "EqLeaf",
    "EqSeries",
    "EqParallel",
    "extract_branches",
    "sp_reduce",
    "path_expression",
    "canonical_pin_order",
    "pin_signature",
    "reorder_word",
    "RenamedCell",
    "rename_transistors",
    "CAMatrix",
    "FREE_ROW",
    "build_matrix",
    "matrix_columns",
    "encode_symbol",
    "encode_activity",
    "group_matrices",
    "stack",
    "training_matrix",
    "inference_matrix",
]
