"""Linear classifiers the paper compared against Random Forest:
ridge regression classifier, logistic regression and a linear SVM.

All are NumPy implementations; binary and one-vs-rest multiclass.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _add_bias(X: np.ndarray) -> np.ndarray:
    return np.hstack([X, np.ones((len(X), 1))])


class RidgeClassifier:
    """Least-squares classifier with L2 regularization (closed form)."""

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = alpha
        self.coef_: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeClassifier":
        X = _add_bias(np.asarray(X, dtype=np.float64))
        y = np.asarray(y)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        targets = np.full((len(y), len(self.classes_)), -1.0)
        targets[np.arange(len(y)), encoded] = 1.0
        gram = X.T @ X + self.alpha * np.eye(X.shape[1])
        self.coef_ = np.linalg.solve(gram, X.T @ targets)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("classifier is not fitted")
        return _add_bias(np.asarray(X, dtype=np.float64)) @ self.coef_

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.decision_function(X), axis=1)]


class LogisticRegression:
    """Binary / one-vs-rest logistic regression, full-batch gradient descent."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        n_iterations: int = 300,
        l2: float = 1e-3,
    ) -> None:
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.coef_: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X = _add_bias(np.asarray(X, dtype=np.float64))
        # Feature scaling keeps the fixed learning rate stable.
        self._scale = np.maximum(np.abs(X).max(axis=0), 1.0)
        X = X / self._scale
        y = np.asarray(y)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        n_classes = len(self.classes_)
        weights = np.zeros((X.shape[1], n_classes))
        for j in range(n_classes):
            target = (encoded == j).astype(np.float64)
            w = weights[:, j]
            for _ in range(self.n_iterations):
                p = self._sigmoid(X @ w)
                gradient = X.T @ (p - target) / len(X) + self.l2 * w
                w = w - self.learning_rate * gradient
            weights[:, j] = w
        self.coef_ = weights
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("classifier is not fitted")
        X = _add_bias(np.asarray(X, dtype=np.float64)) / self._scale
        return X @ self.coef_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        scores = self._sigmoid(self.decision_function(X))
        totals = scores.sum(axis=1, keepdims=True)
        return scores / np.maximum(totals, 1e-12)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.decision_function(X), axis=1)]


class LinearSVC:
    """Linear SVM trained with the Pegasos sub-gradient method."""

    def __init__(
        self,
        C: float = 1.0,
        n_iterations: int = 2000,
        batch_size: int = 64,
        random_state: Optional[int] = None,
    ) -> None:
        self.C = C
        self.n_iterations = n_iterations
        self.batch_size = batch_size
        self.random_state = random_state
        self.coef_: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVC":
        X = _add_bias(np.asarray(X, dtype=np.float64))
        self._scale = np.maximum(np.abs(X).max(axis=0), 1.0)
        X = X / self._scale
        y = np.asarray(y)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        rng = np.random.default_rng(self.random_state)
        lam = 1.0 / (self.C * len(X))
        weights = np.zeros((X.shape[1], len(self.classes_)))
        for j in range(len(self.classes_)):
            signs = np.where(encoded == j, 1.0, -1.0)
            w = np.zeros(X.shape[1])
            for t in range(1, self.n_iterations + 1):
                batch = rng.integers(0, len(X), size=min(self.batch_size, len(X)))
                margins = signs[batch] * (X[batch] @ w)
                violators = batch[margins < 1.0]
                eta = 1.0 / (lam * t)
                gradient = lam * w
                if len(violators):
                    gradient = gradient - (
                        X[violators].T @ signs[violators]
                    ) / len(batch)
                w = w - eta * gradient
            weights[:, j] = w
        self.coef_ = weights
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("classifier is not fitted")
        X = _add_bias(np.asarray(X, dtype=np.float64)) / self._scale
        return X @ self.coef_

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.decision_function(X), axis=1)]
