"""Classification metrics (accuracy is the paper's reported figure)."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions — the paper's "prediction accuracy"."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch {y_true.shape} vs {y_pred.shape}")
    if len(y_true) == 0:
        raise ValueError("empty evaluation set")
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """2x2 (or CxC) confusion matrix; rows = truth, columns = prediction."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    classes = np.unique(np.concatenate([y_true, y_pred]))
    index = {c: i for i, c in enumerate(classes)}
    out = np.zeros((len(classes), len(classes)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        out[index[t], index[p]] += 1
    return out


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1
) -> Tuple[float, float, float]:
    """Precision / recall / F1 for the *detected* class.

    For CA prediction the positive class is "defect detected"; recall on
    it measures how much real detection capability a predicted CA model
    retains.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    tp = float(((y_pred == positive) & (y_true == positive)).sum())
    fp = float(((y_pred == positive) & (y_true != positive)).sum())
    fn = float(((y_pred != positive) & (y_true == positive)).sum())
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return precision, recall, f1


def classification_report(y_true: np.ndarray, y_pred: np.ndarray) -> Dict[str, float]:
    """All headline metrics in one dictionary."""
    precision, recall, f1 = precision_recall_f1(y_true, y_pred)
    return {
        "accuracy": accuracy_score(y_true, y_pred),
        "precision": precision,
        "recall": recall,
        "f1": f1,
    }
