"""Permutation feature importance.

Answers "which CA-matrix columns does the classifier actually use?" —
direct evidence for the paper's feature-design claims (activity columns
and defect-location columns carry the signal; Section II.B's "ML friendly"
argument).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.learning.metrics import accuracy_score


def permutation_importance(
    classifier: object,
    X: np.ndarray,
    y: np.ndarray,
    columns: Optional[Sequence[str]] = None,
    n_repeats: int = 3,
    random_state: Optional[int] = 0,
    max_rows: int = 20_000,
) -> Dict[str, float]:
    """Mean accuracy drop when each column is shuffled.

    Returns ``{column_name: importance}``; columns the model ignores score
    ~0, load-bearing columns score the accuracy they protect.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    rng = np.random.default_rng(random_state)
    if len(X) > max_rows:
        index = rng.choice(len(X), size=max_rows, replace=False)
        X, y = X[index], y[index]
    names = (
        list(columns)
        if columns is not None
        else [f"f{i}" for i in range(X.shape[1])]
    )
    if len(names) != X.shape[1]:
        raise ValueError(
            f"{len(names)} column names for {X.shape[1]} features"
        )
    baseline = accuracy_score(y, classifier.predict(X))
    importances: Dict[str, float] = {}
    for j, name in enumerate(names):
        drops: List[float] = []
        for _ in range(n_repeats):
            shuffled = X.copy()
            rng.shuffle(shuffled[:, j])
            drops.append(baseline - accuracy_score(y, classifier.predict(shuffled)))
        importances[name] = float(np.mean(drops))
    return importances


def grouped_importance(
    importances: Dict[str, float], columns: Sequence[str]
) -> Dict[str, float]:
    """Aggregate per-column importances into the CA-matrix column families:
    stimuli, response, activity, structure, defect location."""
    groups = {"stimulus": 0.0, "response": 0.0, "activity": 0.0,
              "structure": 0.0, "defect": 0.0}
    for name in columns:
        value = importances.get(name, 0.0)
        if name.startswith("IN"):
            groups["stimulus"] += value
        elif name == "RESP":
            groups["response"] += value
        elif name.endswith(("_LVL", "_SD", "_PW")):
            groups["structure"] += value
        elif name.endswith(("_D", "_G", "_S", "_B")):
            groups["defect"] += value
        else:
            groups["activity"] += value
    return groups
