"""Dataset assembly: libraries of CA models -> grouped training matrices.

"Cells with the same number of inputs and having the same number of
transistors are grouped together to form the Training dataset"
(Section II.B).  A :class:`CellSample` bundles one cell with its CA model
and CA-matrix; group utilities pool and stack samples, optionally
restricted to one fault model at a time (the paper evaluates open and
short defects separately).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.camatrix.matrix import CAMatrix, FREE_ROW
from repro.camatrix.pipeline import training_matrix
from repro.camodel.model import CAModel
from repro.library.technology import ElectricalParams
from repro.spice.netlist import CellNetlist

GroupKey = Tuple[int, int]


@dataclass
class CellSample:
    """One cell with its generated CA model and CA-matrix."""

    cell: CellNetlist
    model: CAModel
    matrix: CAMatrix

    @property
    def name(self) -> str:
        return self.cell.name

    @property
    def group_key(self) -> GroupKey:
        return self.cell.group_key


def build_samples(
    cells_with_models: Iterable[Tuple[CellNetlist, CAModel]],
    params: Optional[ElectricalParams] = None,
) -> List[CellSample]:
    """Build labelled samples from (cell, CA model) pairs."""
    out: List[CellSample] = []
    for cell, model in cells_with_models:
        out.append(
            CellSample(cell=cell, model=model, matrix=training_matrix(cell, model, params))
        )
    return out


def group_samples(samples: Iterable[CellSample]) -> Dict[GroupKey, List[CellSample]]:
    """Pool samples by (#inputs, #transistors)."""
    groups: Dict[GroupKey, List[CellSample]] = {}
    for sample in samples:
        groups.setdefault(sample.group_key, []).append(sample)
    return groups


def kind_row_mask(matrix: CAMatrix, kinds: Optional[Set[str]]) -> np.ndarray:
    """Row mask selecting free rows plus defects of the wanted kinds."""
    if kinds is None:
        return np.ones(matrix.n_rows, dtype=bool)
    kind_of = np.array(
        [d.kind in kinds for d in matrix.defects], dtype=bool
    )
    row_defect = np.asarray(matrix.row_defect)
    mask = np.ones(matrix.n_rows, dtype=bool)
    bound = row_defect != FREE_ROW
    mask[bound] = kind_of[row_defect[bound]]
    return mask


def sample_rows(
    sample: CellSample,
    kinds: Optional[Set[str]] = None,
    max_rows: Optional[int] = None,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """(X, y) rows of one sample, optionally kind-filtered and subsampled."""
    mask = kind_row_mask(sample.matrix, kinds)
    X = sample.matrix.features[mask]
    y = sample.matrix.labels[mask]
    if max_rows is not None and len(X) > max_rows:
        rng = np.random.default_rng(seed)
        index = rng.choice(len(X), size=max_rows, replace=False)
        X, y = X[index], y[index]
    return X, y


def stack_group(
    samples: Sequence[CellSample],
    kinds: Optional[Set[str]] = None,
    max_rows_per_cell: Optional[int] = None,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Stack several samples of one group into a training set."""
    if not samples:
        raise ValueError("empty group")
    parts = [
        sample_rows(s, kinds=kinds, max_rows=max_rows_per_cell, seed=seed + i)
        for i, s in enumerate(samples)
    ]
    X = np.vstack([p[0] for p in parts])
    y = np.concatenate([p[1] for p in parts])
    return X, y
