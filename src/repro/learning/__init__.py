"""From-scratch ML: trees, forests, baselines, metrics, protocols."""

from repro.learning.tree import DecisionTreeClassifier
from repro.learning.forest import RandomForestClassifier
from repro.learning.engine import PackedForest, candidate_features, grow_frontier
from repro.learning.knn import KNeighborsClassifier
from repro.learning.linear import LinearSVC, LogisticRegression, RidgeClassifier
from repro.learning.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    precision_recall_f1,
)
from repro.learning.datasets import (
    CellSample,
    build_samples,
    group_samples,
    kind_row_mask,
    sample_rows,
    stack_group,
)
from repro.learning.tuning import TuningResult, grid_search
from repro.learning.persistence import (
    load_classifier,
    load_packed_forest,
    save_classifier,
    save_packed_forest,
)
from repro.learning.importance import grouped_importance, permutation_importance
from repro.learning.evaluate import (
    CellEvaluation,
    EvaluationReport,
    cross_technology,
    default_classifier_factory,
    leave_one_out,
)

__all__ = [
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "PackedForest",
    "candidate_features",
    "grow_frontier",
    "KNeighborsClassifier",
    "RidgeClassifier",
    "LogisticRegression",
    "LinearSVC",
    "accuracy_score",
    "confusion_matrix",
    "precision_recall_f1",
    "classification_report",
    "CellSample",
    "build_samples",
    "group_samples",
    "sample_rows",
    "stack_group",
    "kind_row_mask",
    "CellEvaluation",
    "EvaluationReport",
    "leave_one_out",
    "cross_technology",
    "default_classifier_factory",
    "permutation_importance",
    "grouped_importance",
    "save_classifier",
    "load_classifier",
    "save_packed_forest",
    "load_packed_forest",
    "grid_search",
    "TuningResult",
]
