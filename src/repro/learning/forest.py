"""Random Forest classifier (the paper's chosen algorithm, Section II.B).

"A Random Forest Classifier is composed of several Decision Tree
Classifiers ... the Forest averages the responses of all Trees and outputs
the class of the data sample."  Each tree is fitted on a bootstrap sample
with a random feature subset considered per split.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.learning.tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bootstrap-aggregated CART ensemble with soft voting."""

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        max_features: object = "sqrt",
        bootstrap: bool = True,
        max_samples: Optional[float] = None,
        random_state: Optional[int] = None,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.max_samples = max_samples
        self.random_state = random_state
        self.estimators_: List[DecisionTreeClassifier] = []
        self.classes_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = np.asarray(X)
        y = np.asarray(y)
        if len(X) != len(y):
            raise ValueError("X and y are misaligned")
        rng = np.random.default_rng(self.random_state)
        self.classes_ = np.unique(y)
        self.estimators_ = []
        n = len(X)
        sample_size = n
        if self.max_samples is not None:
            sample_size = max(1, int(self.max_samples * n))
        for i in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            if self.bootstrap:
                index = rng.integers(0, n, size=sample_size)
            else:
                index = np.arange(n)
            tree.fit(X[index], y[index])
            self.estimators_.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(X)
        accumulated = np.zeros((len(X), len(self.classes_)))
        for tree in self.estimators_:
            proba = tree.predict_proba(X)
            # align tree classes (a bootstrap can miss a class entirely)
            for j, cls in enumerate(tree.classes_):
                k = int(np.searchsorted(self.classes_, cls))
                accumulated[:, k] += proba[:, j]
        return accumulated / len(self.estimators_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy, scikit-learn style."""
        return float((self.predict(X) == np.asarray(y)).mean())
