"""Random Forest classifier (the paper's chosen algorithm, Section II.B).

"A Random Forest Classifier is composed of several Decision Tree
Classifiers ... the Forest averages the responses of all Trees and outputs
the class of the data sample."  Each tree is fitted on a bootstrap sample
with a random feature subset considered per split.

Throughput knobs (both identity-preserving):

* ``parallelism`` fans tree fitting across a process pool.  Per-tree
  seeds and bootstrap indices are drawn from the forest generator in
  exactly the serial order *before* the fan-out, and a fitted tree is a
  pure function of ``(bootstrap sample, seed)``, so a parallel fit is
  byte-identical to a serial one.
* Inference runs through the fused :class:`~repro.learning.engine.PackedForest`
  by default — one level-synchronous descent over every
  ``(sample, tree)`` lane instead of a per-tree Python loop — and is
  bit-for-bit equal to the per-tree path (``predict_proba(packed=False)``).
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.learning.engine import M_FIT_SECONDS, PackedForest
from repro.learning.tree import DecisionTreeClassifier

#: per-worker fit context installed by the pool initializer, so tree
#: payloads stay small (seed + bootstrap index, not the matrix)
_FIT_X: Optional[np.ndarray] = None
_FIT_Y: Optional[np.ndarray] = None
_FIT_PARAMS: Optional[Dict[str, object]] = None


def _fit_pool_init(
    X: np.ndarray, y: np.ndarray, params: Dict[str, object]
) -> None:
    global _FIT_X, _FIT_Y, _FIT_PARAMS
    _FIT_X = X
    _FIT_Y = y
    _FIT_PARAMS = params


def _fit_tree_worker(
    task: Tuple[int, np.ndarray]
) -> DecisionTreeClassifier:
    """Fit one tree on its pre-drawn bootstrap sample and seed."""
    seed, index = task
    assert _FIT_X is not None and _FIT_Y is not None
    assert _FIT_PARAMS is not None
    tree = DecisionTreeClassifier(random_state=seed, **_FIT_PARAMS)
    return tree.fit(_FIT_X[index], _FIT_Y[index])


class RandomForestClassifier:
    """Bootstrap-aggregated CART ensemble with soft voting."""

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        max_features: object = "sqrt",
        bootstrap: bool = True,
        max_samples: Optional[float] = None,
        random_state: Optional[int] = None,
        parallelism: Optional[int] = None,
        engine: str = "frontier",
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.max_samples = max_samples
        self.random_state = random_state
        self.parallelism = parallelism
        self.engine = engine
        self.estimators_: List[DecisionTreeClassifier] = []
        self.classes_: Optional[np.ndarray] = None
        self._packed: Optional[PackedForest] = None

    def _tree_params(self) -> Dict[str, object]:
        return {
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "engine": self.engine,
        }

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = np.asarray(X)
        y = np.asarray(y)
        if len(X) != len(y):
            raise ValueError("X and y are misaligned")
        started = time.perf_counter()
        rng = np.random.default_rng(self.random_state)
        self.classes_ = np.unique(y)
        self.estimators_ = []
        self._packed = None
        n = len(X)
        sample_size = n
        if self.max_samples is not None:
            sample_size = max(1, int(self.max_samples * n))
        # Seeds and bootstrap indices are drawn in the exact serial
        # order regardless of how the fitting itself is scheduled.
        tasks: List[Tuple[int, np.ndarray]] = []
        for _ in range(self.n_estimators):
            seed = int(rng.integers(0, 2**31 - 1))
            if self.bootstrap:
                index = rng.integers(0, n, size=sample_size)
            else:
                index = np.arange(n)
            tasks.append((seed, index))
        workers = self.parallelism
        if workers is not None and workers > 1 and len(tasks) > 1:
            with multiprocessing.Pool(
                processes=min(workers, len(tasks)),
                initializer=_fit_pool_init,
                initargs=(X, y, self._tree_params()),
            ) as pool:
                # map() preserves task order, so estimator order (and
                # therefore every prediction) matches the serial path.
                self.estimators_ = pool.map(_fit_tree_worker, tasks)
        else:
            for seed, index in tasks:
                tree = DecisionTreeClassifier(
                    random_state=seed, **self._tree_params()
                )
                self.estimators_.append(tree.fit(X[index], y[index]))
        obs.metrics().observe(M_FIT_SECONDS, time.perf_counter() - started)
        return self

    # ------------------------------------------------------------------
    def packed_forest(self) -> PackedForest:
        """The fused inference structure (built lazily, cached per fit)."""
        if not self.estimators_:
            raise RuntimeError("classifier is not fitted")
        if self._packed is None:
            self._packed = PackedForest.from_forest(self)
        return self._packed

    def predict_proba(
        self, X: np.ndarray, *, packed: bool = True
    ) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(X)
        if packed:
            return self.packed_forest().predict_proba(X)
        assert self.classes_ is not None
        accumulated = np.zeros((len(X), len(self.classes_)))
        for tree in self.estimators_:
            proba = tree.predict_proba(X)
            # align tree classes (a bootstrap can miss a class entirely)
            columns = np.searchsorted(self.classes_, tree.classes_)
            accumulated[:, columns] += proba
        return accumulated / len(self.estimators_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        assert self.classes_ is not None
        return self.classes_[np.argmax(proba, axis=1)]

    def vote_dispersion(self, X: np.ndarray) -> np.ndarray:
        """Per-sample tree disagreement (0 = unanimous) — the
        confidence signal for uncertainty-gated routing."""
        return self.packed_forest().vote_dispersion(np.asarray(X))

    def predict_with_dispersion(
        self, X: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(labels, vote dispersion) from one fused descent."""
        return self.packed_forest().predict_with_dispersion(np.asarray(X))

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy, scikit-learn style."""
        return float((self.predict(X) == np.asarray(y)).mean())
