"""Frontier-batched tree growth and fused multi-tree inference.

The learning stack is the hybrid flow's hot path once the simulator is
vectorized: ``leave_one_out`` / ``grid_search`` / ``HybridFlow`` train
dozens to hundreds of Random Forests per run.  This module gives the
forest the same treatment the solver got in the batched/packed engines:

* :func:`grow_frontier` replaces the recursive, per-candidate-feature
  Python loop of ``DecisionTreeClassifier._grow`` with a breadth-first
  builder.  Each level evaluates best-split histograms for the *entire
  frontier of open nodes in one pass*: ``(node, candidate slot,
  feature value, class)`` is encoded into a single flat index and every
  per-node per-feature class histogram falls out of one ``np.bincount``
  plus a segmented cumulative sum (the LightGBM histogram trick — exact
  here, because CA-matrix features are small integer codes).  Grown
  trees are **node-for-node identical** to the recursive reference:
  same features, thresholds, counts and DFS-preorder node numbering
  (``tests/test_learning_engine.py`` enforces it differentially).

* :class:`PackedForest` packs every estimator's flattened node arrays
  into one offset-indexed structure and runs a single level-synchronous
  descent over all ``(sample, tree)`` lanes with active-lane
  compaction, replacing the per-tree Python loop of
  ``RandomForestClassifier.predict_proba``.  Per-tree vote dispersion —
  the confidence signal for uncertainty-gated routing — comes out of
  the same descent for free.

Identity between the two growth engines rests on one refactor: the
candidate-feature subset of a node is drawn from a *per-node* generator
seeded by ``(tree seed, heap path key)`` (:func:`candidate_features`)
instead of one sequential generator consumed in growth order.  Both
engines draw the exact same subsets for the exact same nodes no matter
which order they visit them in — which is what makes breadth-first
growth (and any future by-level parallelism) provably equivalent to
the depth-first reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import obs

# ----------------------------------------------------------------------
# Metric names (repro.obs registry; see repro.lint.catalog)
# ----------------------------------------------------------------------
#: histogram — wall seconds of one RandomForestClassifier.fit call
M_FIT_SECONDS = "learning.fit.seconds"
#: counter — frontier nodes processed by the level-synchronous builder
M_FRONTIER_NODES = "learning.frontier_nodes"
#: counter — (sample, tree) lanes descended by the packed forest
M_PACKED_LANES = "learning.packed_lanes"

#: cap on one level's histogram tensor (elements); open nodes are
#: chunked so ``chunk * slots * values * classes`` stays below this —
#: chunking is invisible to the result (nodes are independent)
_HISTOGRAM_BUDGET = 1 << 22

#: one grown node: (feature, threshold, left, right, class counts),
#: child indices in DFS-preorder numbering, -1 for leaves
NodeRecord = Tuple[int, float, int, int, np.ndarray]


def candidate_features(
    base_seed: int, path_key: int, n_features: int, n_candidates: int
) -> np.ndarray:
    """Candidate feature subset of one node, independent of growth order.

    ``path_key`` is the node's heap path (root 1, left ``2k``, right
    ``2k + 1``), so the draw depends only on the node's position in the
    tree — the frontier and recursive engines see identical subsets.
    The subset keeps the generator's draw order (ties between equally
    good features resolve toward the earlier candidate, exactly like
    the reference's sequential strict-less-than scan).
    """
    if n_candidates >= n_features:
        return np.arange(n_features)
    rng = np.random.default_rng((base_seed, path_key))
    return rng.choice(n_features, size=n_candidates, replace=False)


# ----------------------------------------------------------------------
# Level-synchronous growth
# ----------------------------------------------------------------------
def grow_frontier(
    X: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    *,
    max_depth: Optional[int],
    min_samples_split: int,
    min_samples_leaf: int,
    n_candidates: int,
    base_seed: int,
) -> List[NodeRecord]:
    """Grow one CART tree breadth-first; returns DFS-preorder records.

    *y* must be integer-encoded class labels (``0 .. n_classes - 1``).
    The returned node list is exactly what the recursive reference
    builds: same splits, same tie-breaking, same numbering.
    """
    n_rows, n_features = X.shape
    X = np.asarray(X)
    # The reference truncates each column with ``astype(np.int64)`` for
    # histogramming but routes samples on the *original* values; do the
    # same, with a single global shift instead of per-node offsets.
    Xi = X.astype(np.int64)
    if n_features:
        global_min = Xi.min(axis=0)
        Xs = Xi - global_min[None, :]
        n_values = int(Xs.max()) + 1
        if n_values <= np.iinfo(np.int16).max:
            # values only feed the flat histogram index; a narrow dtype
            # halves the gather traffic without changing any count
            Xs = Xs.astype(np.int16)
    else:
        global_min = np.zeros(0, dtype=np.int64)
        Xs = Xi
        n_values = 1

    # Growable per-node records, indexed by breadth-first creation id.
    feature_of: List[int] = []
    threshold_of: List[float] = []
    left_of: List[int] = []
    right_of: List[int] = []
    counts_of: List[Optional[np.ndarray]] = []

    def new_node() -> int:
        feature_of.append(-1)
        threshold_of.append(0.0)
        left_of.append(-1)
        right_of.append(-1)
        counts_of.append(None)
        return len(feature_of) - 1

    root = new_node()
    frontier_ids = [root]
    frontier_keys = [1]
    rows = np.arange(n_rows, dtype=np.int64)
    row_node = np.zeros(n_rows, dtype=np.int64)
    depth = 0
    metrics = obs.metrics()

    while frontier_ids:
        n_frontier = len(frontier_ids)
        metrics.inc(M_FRONTIER_NODES, n_frontier)
        sizes = np.bincount(row_node, minlength=n_frontier)
        class_counts_int = np.bincount(
            row_node * n_classes + y[rows],
            minlength=n_frontier * n_classes,
        ).reshape(n_frontier, n_classes)
        class_counts = class_counts_int.astype(np.float64)
        for rank in range(n_frontier):
            counts_of[frontier_ids[rank]] = class_counts[rank]

        # Stopping criteria — mirrors the reference exactly: too small,
        # depth-capped (uniform per level), or pure.
        open_mask = (sizes >= min_samples_split) & (
            class_counts.max(axis=1) != class_counts.sum(axis=1)
        )
        if max_depth is not None and depth >= max_depth:
            open_mask[:] = False
        if n_candidates <= 0 or n_features == 0 or n_values <= 1:
            open_mask[:] = False
        open_ranks = np.flatnonzero(open_mask)
        n_open = len(open_ranks)
        if n_open == 0:
            break

        # Candidate matrix: every node draws the same number of slots.
        if n_candidates >= n_features:
            n_slots = n_features
            cand = np.broadcast_to(
                np.arange(n_features, dtype=np.int64), (n_open, n_slots)
            )
        else:
            n_slots = n_candidates
            cand = np.empty((n_open, n_slots), dtype=np.int64)
            for i, rank in enumerate(open_ranks):
                cand[i] = candidate_features(
                    base_seed, frontier_keys[rank], n_features, n_slots
                )

        rank_to_open = np.full(n_frontier, -1, dtype=np.int64)
        rank_to_open[open_ranks] = np.arange(n_open)
        in_open = open_mask[row_node]
        open_rows = rows[in_open]
        open_rank_of_row = rank_to_open[row_node[in_open]]

        best_score = np.full(n_open, np.inf)
        best_slot = np.zeros(n_open, dtype=np.int64)
        best_pos = np.zeros(n_open, dtype=np.int64)
        per_node = n_slots * n_values * n_classes
        chunk = max(1, _HISTOGRAM_BUDGET // per_node)
        open_sizes = sizes[open_ranks]
        open_totals = class_counts_int[open_ranks]
        for lo in range(0, n_open, chunk):
            hi = min(lo + chunk, n_open)
            in_chunk = (open_rank_of_row >= lo) & (open_rank_of_row < hi)
            chunk_rows = open_rows[in_chunk]
            local_rank = open_rank_of_row[in_chunk] - lo
            n_chunk = hi - lo
            # One flat (node, slot, class, value) histogram for the
            # chunk; values on the LAST axis so the prefix cumsum runs
            # over contiguous memory.
            values = Xs[chunk_rows[:, None], cand[lo:hi][local_rank]]
            row_base = (
                local_rank * (n_slots * n_classes * n_values)
                + y[chunk_rows] * n_values
            )
            slot_base = np.arange(n_slots) * (n_classes * n_values)
            flat = (row_base[:, None] + slot_base[None, :]) + values
            histogram = np.bincount(
                flat.ravel(),
                minlength=n_chunk * n_slots * n_classes * n_values,
            ).reshape(n_chunk, n_slots, n_classes, n_values)
            prefix = histogram.cumsum(axis=3)[:, :, :, :-1]
            left_totals = prefix.sum(axis=2)
            node_sizes = open_sizes[lo:hi][:, None, None]
            right_totals = node_sizes - left_totals
            valid = (left_totals >= min_samples_leaf) & (
                right_totals >= min_samples_leaf
            )
            # per-(node, class) totals are the node class counts — no
            # reduction over the histogram needed
            totals = open_totals[lo:hi][:, None, :, None]
            with np.errstate(divide="ignore", invalid="ignore"):
                gini_left = 1.0 - (
                    (prefix / left_totals[:, :, None, :]) ** 2
                ).sum(axis=2)
                right_counts = totals - prefix
                gini_right = 1.0 - (
                    (right_counts / right_totals[:, :, None, :]) ** 2
                ).sum(axis=2)
            weighted = (
                left_totals * gini_left + right_totals * gini_right
            ) / node_sizes
            weighted[~valid] = np.inf
            pos = np.argmin(weighted, axis=2)
            score = np.take_along_axis(weighted, pos[:, :, None], axis=2)[
                :, :, 0
            ]
            slot = np.argmin(score, axis=1)
            chunk_index = np.arange(n_chunk)
            best_score[lo:hi] = score[chunk_index, slot]
            best_slot[lo:hi] = slot
            best_pos[lo:hi] = pos[chunk_index, slot]

        split_mask = np.isfinite(best_score)
        open_index = np.arange(n_open)
        split_feature = cand[open_index, best_slot]
        split_threshold = (
            global_min[split_feature] + best_pos + 0.5
            if n_features
            else np.zeros(n_open)
        )

        # Route on the ORIGINAL values, like the reference.
        in_split = split_mask[open_rank_of_row]
        split_rows = open_rows[in_split]
        split_rank = open_rank_of_row[in_split]
        go_left = (
            X[split_rows, split_feature[split_rank]]
            <= split_threshold[split_rank]
        )
        left_sizes = np.bincount(split_rank[go_left], minlength=n_open)
        right_sizes = np.bincount(split_rank[~go_left], minlength=n_open)
        # The reference re-checks routed child sizes (they can differ
        # from the histogram totals only for non-integer features).
        ok = (
            split_mask
            & (left_sizes >= min_samples_leaf)
            & (right_sizes >= min_samples_leaf)
        )

        child_of = np.full(n_open, -1, dtype=np.int64)
        next_ids: List[int] = []
        next_keys: List[int] = []
        for j, o in enumerate(np.flatnonzero(ok)):
            rank = int(open_ranks[o])
            node_id = frontier_ids[rank]
            key = frontier_keys[rank]
            left_id = new_node()
            right_id = new_node()
            feature_of[node_id] = int(split_feature[o])
            threshold_of[node_id] = float(split_threshold[o])
            left_of[node_id] = left_id
            right_of[node_id] = right_id
            child_of[o] = j
            next_ids.extend((left_id, right_id))
            next_keys.extend((2 * key, 2 * key + 1))

        keep = ok[split_rank]
        rows = split_rows[keep]
        row_node = 2 * child_of[split_rank[keep]] + np.where(
            go_left[keep], 0, 1
        )
        frontier_ids = next_ids
        frontier_keys = next_keys
        depth += 1

    # Renumber breadth-first creation ids into the reference's
    # DFS-preorder (node, left subtree, right subtree) — iteratively,
    # so degenerate chain-shaped trees cannot hit the recursion limit.
    n_nodes = len(feature_of)
    new_id = np.full(n_nodes, -1, dtype=np.int64)
    order: List[int] = []
    stack = [root]
    while stack:
        node_id = stack.pop()
        new_id[node_id] = len(order)
        order.append(node_id)
        if left_of[node_id] >= 0:
            stack.append(right_of[node_id])
            stack.append(left_of[node_id])
    records: List[NodeRecord] = []
    for node_id in order:
        left = left_of[node_id]
        right = right_of[node_id]
        counts = counts_of[node_id]
        assert counts is not None
        records.append(
            (
                feature_of[node_id],
                threshold_of[node_id],
                int(new_id[left]) if left >= 0 else -1,
                int(new_id[right]) if right >= 0 else -1,
                counts,
            )
        )
    return records


# ----------------------------------------------------------------------
# Fused multi-tree inference
# ----------------------------------------------------------------------
@dataclass
class PackedForest:
    """All estimators of a forest in one offset-indexed node table.

    ``feature/threshold/left/right`` concatenate the per-tree flattened
    arrays with child indices rebased to the global table; tree ``t``
    owns rows ``offsets[t]:offsets[t + 1]`` and its root is
    ``offsets[t]``.  ``leaf_proba`` holds each node's class
    distribution already aligned to the *forest's* class order (a
    bootstrap can miss a class entirely), ``leaf_vote`` each node's
    majority class index — so inference never touches per-tree class
    maps.  Built by :meth:`from_forest`; persisted via
    :mod:`repro.learning.persistence`.
    """

    classes_: np.ndarray
    n_estimators: int
    offsets: np.ndarray
    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    leaf_proba: np.ndarray
    leaf_vote: np.ndarray

    def __post_init__(self) -> None:
        # Descent-ready views: leaves become self-loops with a
        # never-taken split (threshold -inf routes right, back to the
        # leaf itself), so a step is unconditional — no per-level leaf
        # masking.
        n_nodes = len(self.feature)
        node_index = np.arange(n_nodes, dtype=np.int64)
        is_leaf = self.left < 0
        self._feature_d: np.ndarray = np.where(is_leaf, 0, self.feature)
        self._threshold_d: np.ndarray = np.where(
            is_leaf, -np.inf, self.threshold
        )
        # Descent runs in *edge space*: the state is ``s = 2*node`` and
        # one step is ``s = child_e.take(s + go_left)`` over tables
        # duplicated per branch — ``feature_e[2n] == feature_e[2n+1] ==
        # feature[n]`` and ``child_e[2n+g] == 2*child[n][g]`` (column 0
        # right, column 1 left, leaves self-looping).  Pre-doubling the
        # child entries removes the per-level ``2*node`` multiply, and
        # every gather is a flat ``np.take`` (several-fold faster than
        # two-array fancy indexing).
        self._feature_e: np.ndarray = np.repeat(self._feature_d, 2)
        self._threshold_e: np.ndarray = np.repeat(self._threshold_d, 2)
        child_e = np.empty(2 * n_nodes, dtype=np.int64)
        child_e[0::2] = 2 * np.where(is_leaf, node_index, self.right)
        child_e[1::2] = 2 * np.where(is_leaf, node_index, self.left)
        self._child_e: np.ndarray = child_e
        self._is_leaf_e: np.ndarray = np.repeat(is_leaf, 2)
        self._is_leaf: np.ndarray = is_leaf
        # Half-width compare tables for the exact float32 fast path:
        # when every threshold round-trips through float32 unchanged
        # AND the query matrix is narrow-integer (so its values are
        # float32-exact too), comparing in float32 gives bit-identical
        # branch decisions at half the memory traffic.
        threshold_e32 = self._threshold_e.astype(np.float32)
        self._threshold_e32: np.ndarray = threshold_e32
        self._exact32: bool = bool(
            np.all(threshold_e32.astype(np.float64) == self._threshold_e)
        )
        # Depth of the deepest tree bounds the descent's step count.
        # Children follow their parent in DFS preorder, so one reverse
        # pass resolves every subtree depth bottom-up.
        below = np.zeros(n_nodes, dtype=np.int64)
        left, right = self.left, self.right
        for node in range(n_nodes - 1, -1, -1):
            if left[node] >= 0:
                below[node] = 1 + max(below[left[node]], below[right[node]])
        roots = self.offsets[:-1]
        self._max_depth: int = (
            int(below[roots].max()) if len(roots) else 0
        )

    @classmethod
    def from_forest(cls, forest: object) -> "PackedForest":
        """Pack a fitted ``RandomForestClassifier``."""
        estimators = getattr(forest, "estimators_", [])
        classes = getattr(forest, "classes_", None)
        if not estimators or classes is None:
            raise ValueError("cannot pack an unfitted forest")
        n_classes = len(classes)
        offsets = np.zeros(len(estimators) + 1, dtype=np.int64)
        features: List[np.ndarray] = []
        thresholds: List[np.ndarray] = []
        lefts: List[np.ndarray] = []
        rights: List[np.ndarray] = []
        probas: List[np.ndarray] = []
        votes: List[np.ndarray] = []
        for t, tree in enumerate(estimators):
            n_nodes = tree.node_count
            offset = offsets[t]
            offsets[t + 1] = offset + n_nodes
            features.append(tree._feature.astype(np.int64))
            thresholds.append(tree._threshold.astype(np.float64))
            lefts.append(
                np.where(tree._left < 0, -1, tree._left + offset).astype(
                    np.int64
                )
            )
            rights.append(
                np.where(tree._right < 0, -1, tree._right + offset).astype(
                    np.int64
                )
            )
            counts = tree._counts
            # Exactly the reference's per-leaf normalization ...
            proba = counts / np.maximum(
                counts.sum(axis=1, keepdims=True), 1.0
            )
            # ... scattered into the forest's class order.
            columns = np.searchsorted(classes, tree.classes_)
            aligned = np.zeros((n_nodes, n_classes))
            aligned[:, columns] = proba
            probas.append(aligned)
            votes.append(columns[np.argmax(counts, axis=1)].astype(np.int64))
        return cls(
            classes_=np.asarray(classes),
            n_estimators=len(estimators),
            offsets=offsets,
            feature=np.concatenate(features),
            threshold=np.concatenate(thresholds),
            left=np.concatenate(lefts),
            right=np.concatenate(rights),
            leaf_proba=np.vstack(probas),
            leaf_vote=np.concatenate(votes),
        )

    @property
    def node_count(self) -> int:
        return len(self.feature)

    # ------------------------------------------------------------------
    #: levels stepped between two compaction passes — small enough that
    #: pathological chain-shaped trees shed finished lanes quickly, big
    #: enough that bookkeeping amortizes away on balanced trees
    _COMPACT_EVERY = 8

    def descend(self, X: np.ndarray) -> np.ndarray:
        """Leaf node per ``(tree, sample)`` lane, one fused descent.

        All ``n_samples * n_trees`` lanes step level-synchronously.
        Leaves self-loop (see ``__post_init__``), so the inner loop is
        four array ops per level with no leaf masking; every
        ``_COMPACT_EVERY`` levels finished lanes are compacted out, so
        degenerate deep trees don't drag every lane to their depth.
        """
        X = np.asarray(X)
        n_samples = len(X)
        n_features = X.shape[1] if X.ndim == 2 else 0
        # float32 compares are bit-identical to the float64 reference
        # when both sides are float32-exact: narrow-integer queries
        # (every int8/int16 value is exact) against round-trip-checked
        # thresholds.  Wider or float queries take the float64 tables.
        if self._exact32 and X.dtype.kind in "iu" and X.dtype.itemsize <= 2:
            values = X.astype(np.float32).ravel()
            threshold = self._threshold_e32
        else:
            values = (
                X if X.dtype == np.float64 else X.astype(np.float64)
            ).ravel()
            threshold = self._threshold_e
        s = np.repeat(2 * self.offsets[:-1], n_samples)
        # lanes are tree-major, so each lane's row offset into the
        # flattened sample matrix tiles across trees
        row_base = np.tile(
            np.arange(n_samples) * n_features, self.n_estimators
        )
        obs.metrics().inc(M_PACKED_LANES, n_samples * self.n_estimators)
        feature, child = self._feature_e, self._child_e
        out = s.copy()
        lane = np.arange(len(s))
        remaining = self._max_depth
        while remaining > 0 and s.size:
            for _ in range(min(remaining, self._COMPACT_EVERY)):
                go_left = values.take(
                    row_base + feature.take(s)
                ) <= threshold.take(s)
                s = child.take(s + go_left)
            remaining -= self._COMPACT_EVERY
            if remaining > 0:
                done = self._is_leaf_e.take(s)
                out[lane[done]] = s[done]
                keep = ~done
                s = s[keep]
                row_base = row_base[keep]
                lane = lane[keep]
        out[lane] = s
        return (out >> 1).reshape(self.n_estimators, n_samples)

    def _proba_from_leaves(self, leaves: np.ndarray) -> np.ndarray:
        # One gather for all trees; summing the tree axis of the
        # (trees, samples, classes) stack adds trees in index order,
        # exactly like the per-tree reference loop (bit-for-bit).
        stacked = self.leaf_proba.take(leaves, axis=0)
        return stacked.sum(axis=0) / self.n_estimators

    def _dispersion_from_leaves(self, leaves: np.ndarray) -> np.ndarray:
        n_samples = leaves.shape[1]
        n_classes = len(self.classes_)
        votes = self.leaf_vote.take(leaves)
        tally = np.bincount(
            (np.arange(n_samples)[None, :] * n_classes + votes).ravel(),
            minlength=n_samples * n_classes,
        ).reshape(n_samples, n_classes)
        return 1.0 - tally.max(axis=1) / self.n_estimators

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Soft-vote class probabilities, fused across all trees."""
        return self._proba_from_leaves(self.descend(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def vote_dispersion(self, X: np.ndarray) -> np.ndarray:
        """Per-sample tree disagreement in ``[0, 1 - 1/n_trees]``.

        ``0`` means every tree voted the same class; higher values mean
        the forest is uncertain — the routing signal for the
        uncertainty-gated hybrid flow.
        """
        return self._dispersion_from_leaves(self.descend(X))

    def predict_with_dispersion(
        self, X: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(predicted labels, vote dispersion) from one shared descent."""
        leaves = self.descend(X)
        proba = self._proba_from_leaves(leaves)
        labels = self.classes_[np.argmax(proba, axis=1)]
        return labels, self._dispersion_from_leaves(leaves)
