"""Evaluation protocols of Section V.A.

* :func:`leave_one_out` — the same-technology protocol: within each
  (#inputs, #transistors) group, train on m-1 cells and predict the m-th,
  looping so every cell is evaluated once (Table IV.a).
* :func:`cross_technology` — train on every group of one technology,
  evaluate each cell of another technology against its same-key group
  (Tables IV.b / IV.c).  Groups with no training counterpart are reported
  as uncovered (the paper's empty boxes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from repro import obs
from repro.learning.datasets import (
    CellSample,
    GroupKey,
    group_samples,
    sample_rows,
    stack_group,
)
from repro.learning.forest import RandomForestClassifier
from repro.learning.metrics import accuracy_score

#: keep stacked group training sets below this many rows by per-cell
#: subsampling — keeps Random Forest training tractable at library scale
DEFAULT_MAX_GROUP_ROWS = 150_000

ClassifierFactory = Callable[[], object]


def default_classifier_factory(
    seed: int = 0, parallelism: Optional[int] = None
) -> ClassifierFactory:
    """The reproduction's default Random Forest configuration.

    The CA-matrix labels are nearly noise-free, so a few deep trees with a
    large per-split feature fraction dominate the usual sqrt-features
    setting (which too often misses the one defect-location column a
    split needs).  ``parallelism`` fans tree fitting across a process
    pool; fitted forests are byte-identical either way.
    """

    def make() -> RandomForestClassifier:
        return RandomForestClassifier(
            n_estimators=8,
            max_depth=None,
            max_features=0.5,
            random_state=seed,
            parallelism=parallelism,
        )

    return make


def _apply_parallelism(clf: object, parallelism: Optional[int]) -> object:
    """Best-effort override of a classifier's ``parallelism`` knob.

    Fitted trees are seed-determined, so flipping the knob on a
    factory-built classifier never changes its output — only its
    wall-clock.  Classifiers without the attribute are left alone.
    """
    if parallelism is not None and hasattr(clf, "parallelism"):
        clf.parallelism = parallelism
    return clf


@dataclass
class CellEvaluation:
    """Accuracy of one predicted cell."""

    cell_name: str
    group_key: GroupKey
    accuracy: float
    n_rows: int
    n_training_cells: int


@dataclass
class EvaluationReport:
    """Per-cell results plus helpers mirroring the paper's aggregations."""

    evaluations: List[CellEvaluation] = field(default_factory=list)
    #: cells that could not be evaluated (no group peer in the training set)
    uncovered: List[str] = field(default_factory=list)

    def by_group(self) -> Dict[GroupKey, List[CellEvaluation]]:
        groups: Dict[GroupKey, List[CellEvaluation]] = {}
        for e in self.evaluations:
            groups.setdefault(e.group_key, []).append(e)
        return groups

    def group_table(self) -> Dict[GroupKey, Dict[str, float]]:
        """Per-group average / max accuracy — the Table IV box contents."""
        out: Dict[GroupKey, Dict[str, float]] = {}
        for key, items in self.by_group().items():
            accuracies = [e.accuracy for e in items]
            out[key] = {
                "mean": float(np.mean(accuracies)),
                "max": float(np.max(accuracies)),
                "cells": len(items),
                "perfect": sum(1 for a in accuracies if a >= 1.0 - 1e-12),
            }
        return out

    def accuracy_fraction_above(self, threshold: float = 0.97) -> float:
        """Fraction of evaluated cells above an accuracy threshold
        (Section V.B reports the > 97 % share)."""
        if not self.evaluations:
            return 0.0
        return float(
            np.mean([e.accuracy > threshold for e in self.evaluations])
        )

    def mean_accuracy(self) -> float:
        if not self.evaluations:
            return 0.0
        return float(np.mean([e.accuracy for e in self.evaluations]))


def _cap_rows(samples: Sequence[CellSample], max_group_rows: int) -> Optional[int]:
    if not samples:
        return None
    per_cell = max(1, max_group_rows // len(samples))
    largest = max(s.matrix.n_rows for s in samples)
    return per_cell if largest > per_cell else None


def leave_one_out(
    samples: Sequence[CellSample],
    kinds: Optional[Set[str]] = frozenset({"open"}),
    classifier_factory: Optional[ClassifierFactory] = None,
    max_group_rows: int = DEFAULT_MAX_GROUP_ROWS,
    parallelism: Optional[int] = None,
) -> EvaluationReport:
    """Same-technology protocol (Table IV.a)."""
    factory = classifier_factory or default_classifier_factory()
    report = EvaluationReport()
    for key, group in sorted(group_samples(samples).items()):
        if len(group) < 2:
            # "Empty boxes mean that there is zero or one cell available"
            report.uncovered.extend(s.name for s in group)
            continue
        cap = _cap_rows(group, max_group_rows)
        for held_out in group:
            train = [s for s in group if s is not held_out]
            X, y = stack_group(train, kinds=kinds, max_rows_per_cell=cap)
            clf = _apply_parallelism(factory(), parallelism)
            with obs.tracer().span(
                "learning.fit", group=str(key), rows=len(y), cells=len(train)
            ):
                clf.fit(X, y)
            X_eval, y_eval = sample_rows(held_out, kinds=kinds)
            with obs.tracer().span(
                "learning.predict", cell=held_out.name, rows=len(y_eval)
            ):
                predicted = clf.predict(X_eval)
            accuracy = accuracy_score(y_eval, predicted)
            report.evaluations.append(
                CellEvaluation(
                    cell_name=held_out.name,
                    group_key=key,
                    accuracy=accuracy,
                    n_rows=len(y_eval),
                    n_training_cells=len(train),
                )
            )
    return report


def cross_technology(
    train_samples: Sequence[CellSample],
    eval_samples: Sequence[CellSample],
    kinds: Optional[Set[str]] = frozenset({"open"}),
    classifier_factory: Optional[ClassifierFactory] = None,
    max_group_rows: int = DEFAULT_MAX_GROUP_ROWS,
    parallelism: Optional[int] = None,
) -> EvaluationReport:
    """Cross-technology protocol (Tables IV.b and IV.c)."""
    factory = classifier_factory or default_classifier_factory()
    train_groups = group_samples(train_samples)
    report = EvaluationReport()
    classifiers: Dict[GroupKey, object] = {}
    for key, group in sorted(group_samples(eval_samples).items()):
        train = train_groups.get(key, [])
        if not train:
            report.uncovered.extend(s.name for s in group)
            continue
        if key not in classifiers:
            cap = _cap_rows(train, max_group_rows)
            X, y = stack_group(train, kinds=kinds, max_rows_per_cell=cap)
            clf = _apply_parallelism(factory(), parallelism)
            with obs.tracer().span(
                "learning.fit", group=str(key), rows=len(y), cells=len(train)
            ):
                clf.fit(X, y)
            classifiers[key] = clf
        clf = classifiers[key]
        for sample in group:
            X_eval, y_eval = sample_rows(sample, kinds=kinds)
            with obs.tracer().span(
                "learning.predict", cell=sample.name, rows=len(y_eval)
            ):
                predicted = clf.predict(X_eval)
            accuracy = accuracy_score(y_eval, predicted)
            report.evaluations.append(
                CellEvaluation(
                    cell_name=sample.name,
                    group_key=key,
                    accuracy=accuracy,
                    n_rows=len(y_eval),
                    n_training_cells=len(train),
                )
            )
    return report
