"""CART decision-tree classifier (NumPy, from scratch).

scikit-learn (the paper's ML backend) is not available offline, so the
estimators are re-implemented.  The tree exploits a property of the
CA-matrix: every feature is a small integer code, so exhaustive split
search per feature is a bincount away and splits are exact.

Two growth engines produce **node-for-node identical** trees:

* ``engine="frontier"`` (default) — the level-synchronous builder of
  :func:`repro.learning.engine.grow_frontier`: one flat histogram pass
  per level over the whole frontier of open nodes, no recursion (deep
  chain-shaped trees cannot hit the recursion limit).
* ``engine="recursive"`` — the original depth-first reference, kept as
  the oracle for the differential suite in
  ``tests/test_learning_engine.py``.

Both draw each node's candidate-feature subset from a per-node
generator keyed on the node's heap path
(:func:`repro.learning.engine.candidate_features`), so the trees they
grow do not depend on traversal order.

The API follows the scikit-learn conventions the paper's flow relies on:
``fit(X, y)`` / ``predict(X)`` / ``predict_proba(X)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.learning.engine import candidate_features, grow_frontier

GROWTH_ENGINES = ("frontier", "recursive")


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    #: class-count distribution at the node (leaf payload)
    counts: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.left < 0


class DecisionTreeClassifier:
    """Binary-split CART with Gini impurity on integer-coded features."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[object] = None,
        random_state: Optional[int] = None,
        engine: str = "frontier",
    ) -> None:
        if engine not in GROWTH_ENGINES:
            raise ValueError(
                f"unknown growth engine {engine!r}; expected one of "
                f"{', '.join(GROWTH_ENGINES)}"
            )
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.engine = engine
        self._nodes: List[_Node] = []
        self.classes_: Optional[np.ndarray] = None
        self.n_features_: int = 0

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X = np.asarray(X)
        y = np.asarray(y)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be 2-D and aligned with y")
        if len(y) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.classes_, encoded = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        self._n_classes = len(self.classes_)
        # One draw turns ``random_state`` into the base entropy every
        # per-node candidate draw derives from (None stays entropic).
        seed_rng = np.random.default_rng(self.random_state)
        self._base_seed = int(seed_rng.integers(0, 2**63 - 1))
        labels = encoded.astype(np.int64)
        if self.engine == "recursive":
            self._nodes = []
            self._grow(X, labels, np.arange(len(y)), depth=0, path_key=1)
        else:
            records = grow_frontier(
                X,
                labels,
                self._n_classes,
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                n_candidates=self._n_candidate_features(),
                base_seed=self._base_seed,
            )
            self._nodes = [
                _Node(
                    feature=feature,
                    threshold=threshold,
                    left=left,
                    right=right,
                    counts=counts,
                )
                for feature, threshold, left, right, counts in records
            ]
        self._pack()
        return self

    def _pack(self) -> None:
        """Flatten nodes into arrays for vectorized prediction."""
        self._feature = np.array([node.feature for node in self._nodes])
        self._threshold = np.array([node.threshold for node in self._nodes])
        self._left = np.array([node.left for node in self._nodes])
        self._right = np.array([node.right for node in self._nodes])
        self._leaf = self._left < 0
        self._counts = np.vstack([node.counts for node in self._nodes])

    def _n_candidate_features(self) -> int:
        if self.max_features is None:
            return self.n_features_
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        if self.max_features == "log2":
            return max(1, int(np.log2(self.n_features_)))
        if isinstance(self.max_features, float):
            return max(1, int(self.max_features * self.n_features_))
        return min(self.n_features_, int(self.max_features))

    def _grow(
        self,
        X: np.ndarray,
        y: np.ndarray,
        index: np.ndarray,
        depth: int,
        path_key: int = 1,
    ) -> int:
        node_id = len(self._nodes)
        node = _Node()
        self._nodes.append(node)
        labels = y[index]
        counts = np.bincount(labels, minlength=self._n_classes).astype(np.float64)
        node.counts = counts

        if (
            len(index) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or counts.max() == counts.sum()
        ):
            return node_id

        split = self._best_split(X, y, index, path_key)
        if split is None:
            return node_id
        feature, threshold = split
        mask = X[index, feature] <= threshold
        left_index = index[mask]
        right_index = index[~mask]
        if len(left_index) < self.min_samples_leaf or len(right_index) < self.min_samples_leaf:
            return node_id
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X, y, left_index, depth + 1, 2 * path_key)
        node.right = self._grow(X, y, right_index, depth + 1, 2 * path_key + 1)
        return node_id

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, index: np.ndarray, path_key: int
    ) -> Optional[Tuple[int, float]]:
        n = len(index)
        labels = y[index]
        candidates = candidate_features(
            self._base_seed,
            path_key,
            self.n_features_,
            self._n_candidate_features(),
        )
        best_score = np.inf
        best: Optional[Tuple[int, float]] = None
        min_leaf = self.min_samples_leaf
        for feature in candidates:
            column = X[index, feature].astype(np.int64)
            low = column.min()
            span = int(column.max() - low)
            if span == 0:
                continue
            shifted = column - low
            # per-value class histogram in one bincount
            flat = shifted * self._n_classes + labels
            histogram = np.bincount(
                flat, minlength=(span + 1) * self._n_classes
            ).reshape(span + 1, self._n_classes)
            prefix = histogram.cumsum(axis=0)[:-1]  # candidate left partitions
            left_totals = prefix.sum(axis=1)
            right_totals = n - left_totals
            valid = (left_totals >= min_leaf) & (right_totals >= min_leaf)
            if not valid.any():
                continue
            total = prefix[-1] + histogram[-1]
            with np.errstate(divide="ignore", invalid="ignore"):
                gini_left = 1.0 - ((prefix / left_totals[:, None]) ** 2).sum(axis=1)
                right_counts = total[None, :] - prefix
                gini_right = 1.0 - (
                    (right_counts / right_totals[:, None]) ** 2
                ).sum(axis=1)
            weighted = (left_totals * gini_left + right_totals * gini_right) / n
            weighted[~valid] = np.inf
            k = int(np.argmin(weighted))
            if weighted[k] < best_score:
                best_score = weighted[k]
                best = (int(feature), float(low + k + 0.5))
        # Zero-gain splits are allowed (XOR-style regions need them to make
        # progress); termination is guaranteed because both sides of a
        # valid split are non-empty.
        return best

    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X)
        if self.classes_ is None:
            raise RuntimeError("classifier is not fitted")
        rows = np.arange(len(X))
        node_ids = np.zeros(len(X), dtype=np.int64)
        # Level-synchronous descent: every sample takes one step per pass.
        while True:
            at_leaf = self._leaf[node_ids]
            if at_leaf.all():
                break
            features = np.where(at_leaf, 0, self._feature[node_ids])
            go_left = X[rows, features] <= self._threshold[node_ids]
            stepped = np.where(
                go_left, self._left[node_ids], self._right[node_ids]
            )
            node_ids = np.where(at_leaf, node_ids, stepped)
        counts = self._counts[node_ids]
        totals = counts.sum(axis=1, keepdims=True)
        return counts / np.maximum(totals, 1.0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def depth(self) -> int:
        """Actual depth of the grown tree.

        Iterative: children are always appended after their parent, so a
        single reverse pass over the node list computes every subtree
        depth bottom-up.  Degenerate chain-shaped trees (one node per
        level, as ``max_depth=None`` can grow on adversarial data) must
        not hit Python's recursion limit here.
        """
        if not self._nodes:
            return 0
        below = [0] * len(self._nodes)
        for node_id in range(len(self._nodes) - 1, -1, -1):
            node = self._nodes[node_id]
            if not node.is_leaf:
                below[node_id] = 1 + max(below[node.left], below[node.right])
        return below[0]
