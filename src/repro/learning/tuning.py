"""Hyper-parameter search over the grouped evaluation protocol.

A small, dependency-free grid search whose scoring IS the paper's
protocol: leave-one-cell-out accuracy within training groups.  Used to
pick the defaults in :func:`repro.learning.evaluate.default_classifier_factory`
and available to users retuning for their own libraries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple


from repro.learning.datasets import CellSample
from repro.learning.evaluate import leave_one_out
from repro.learning.forest import RandomForestClassifier


@dataclass
class TuningResult:
    """Grid-search outcome, best first."""

    #: (parameter dict, mean LOO accuracy) sorted descending
    ranking: List[Tuple[Dict, float]] = field(default_factory=list)

    @property
    def best_params(self) -> Dict:
        if not self.ranking:
            raise ValueError("no configurations evaluated")
        return self.ranking[0][0]

    @property
    def best_score(self) -> float:
        return self.ranking[0][1]

    def render(self) -> str:
        lines = ["params -> mean LOO accuracy"]
        for params, score in self.ranking:
            lines.append(f"  {params}: {score:.4f}")
        return "\n".join(lines)


def grid_search(
    samples: Sequence[CellSample],
    grid: Mapping[str, Sequence],
    kinds: Optional[Set[str]] = frozenset({"open"}),
    base_params: Optional[Dict] = None,
    seed: int = 0,
) -> TuningResult:
    """Evaluate every Random-Forest configuration in *grid* by LOO.

    *grid* maps RandomForestClassifier argument names to candidate value
    lists; *base_params* fixes the remaining arguments.
    """
    base = dict(base_params or {})
    names = sorted(grid)
    ranking: List[Tuple[Dict, float]] = []
    for values in itertools.product(*(grid[name] for name in names)):
        params = dict(base)
        params.update(dict(zip(names, values)))

        def factory(params: Dict = params) -> RandomForestClassifier:
            return RandomForestClassifier(random_state=seed, **params)

        report = leave_one_out(samples, kinds=kinds, classifier_factory=factory)
        ranking.append((params, report.mean_accuracy()))
    ranking.sort(key=lambda item: -item[1])
    return TuningResult(ranking=ranking)
