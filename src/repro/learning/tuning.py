"""Hyper-parameter search over the grouped evaluation protocol.

A small, dependency-free grid search whose scoring IS the paper's
protocol: leave-one-cell-out accuracy within training groups.  Used to
pick the defaults in :func:`repro.learning.evaluate.default_classifier_factory`
and available to users retuning for their own libraries.

Candidates are independent (each one trains its own forests from the
same deterministic seed), so ``parallelism`` fans them across a process
pool with rankings and winners identical to the serial loop.
"""

from __future__ import annotations

import itertools
import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple


from repro.learning.datasets import CellSample
from repro.learning.evaluate import leave_one_out
from repro.learning.forest import RandomForestClassifier

#: per-worker search context installed by the pool initializer, so each
#: candidate payload is just its parameter dict
_GRID_SAMPLES: Optional[Sequence[CellSample]] = None
_GRID_KINDS: Optional[Set[str]] = None
_GRID_SEED: int = 0


def _grid_pool_init(
    samples: Sequence[CellSample], kinds: Optional[Set[str]], seed: int
) -> None:
    global _GRID_SAMPLES, _GRID_KINDS, _GRID_SEED
    _GRID_SAMPLES = samples
    _GRID_KINDS = kinds
    _GRID_SEED = seed


def _score_candidate(
    samples: Sequence[CellSample],
    kinds: Optional[Set[str]],
    seed: int,
    params: Dict,
) -> float:
    def factory(params: Dict = params) -> RandomForestClassifier:
        return RandomForestClassifier(random_state=seed, **params)

    report = leave_one_out(samples, kinds=kinds, classifier_factory=factory)
    return report.mean_accuracy()


def _grid_candidate_worker(params: Dict) -> float:
    """Score one parameter dict against the worker's shared samples."""
    assert _GRID_SAMPLES is not None
    return _score_candidate(_GRID_SAMPLES, _GRID_KINDS, _GRID_SEED, params)


@dataclass
class TuningResult:
    """Grid-search outcome, best first."""

    #: (parameter dict, mean LOO accuracy) sorted descending
    ranking: List[Tuple[Dict, float]] = field(default_factory=list)

    @property
    def best_params(self) -> Dict:
        if not self.ranking:
            raise ValueError("no configurations evaluated")
        return self.ranking[0][0]

    @property
    def best_score(self) -> float:
        return self.ranking[0][1]

    def render(self) -> str:
        lines = ["params -> mean LOO accuracy"]
        for params, score in self.ranking:
            lines.append(f"  {params}: {score:.4f}")
        return "\n".join(lines)


def grid_search(
    samples: Sequence[CellSample],
    grid: Mapping[str, Sequence],
    kinds: Optional[Set[str]] = frozenset({"open"}),
    base_params: Optional[Dict] = None,
    seed: int = 0,
    parallelism: Optional[int] = None,
) -> TuningResult:
    """Evaluate every Random-Forest configuration in *grid* by LOO.

    *grid* maps RandomForestClassifier argument names to candidate value
    lists; *base_params* fixes the remaining arguments.  ``parallelism``
    distributes candidates across a process pool; every candidate still
    trains from the same deterministic seed, so the ranking (and hence
    ``best_params``) is identical to the serial search.
    """
    base = dict(base_params or {})
    names = sorted(grid)
    candidates: List[Dict] = []
    for values in itertools.product(*(grid[name] for name in names)):
        params = dict(base)
        params.update(dict(zip(names, values)))
        candidates.append(params)
    if parallelism is not None and parallelism > 1 and len(candidates) > 1:
        with multiprocessing.Pool(
            processes=min(parallelism, len(candidates)),
            initializer=_grid_pool_init,
            initargs=(list(samples), kinds, seed),
        ) as pool:
            scores = pool.map(_grid_candidate_worker, candidates)
    else:
        scores = [
            _score_candidate(samples, kinds, seed, params)
            for params in candidates
        ]
    ranking = list(zip(candidates, scores))
    ranking.sort(key=lambda item: -item[1])
    return TuningResult(ranking=ranking)
