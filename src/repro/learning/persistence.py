"""Serialization of trained classifiers.

The hybrid flow trains one Random Forest per (inputs, transistors) group;
persisting them means a CA-generation service can answer inference
requests without retraining from the CA model library every start.

The JSON format is self-describing and covers the estimators the flow
uses (:class:`DecisionTreeClassifier`, :class:`RandomForestClassifier`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.learning.forest import RandomForestClassifier
from repro.learning.tree import DecisionTreeClassifier, _Node

FORMAT_VERSION = 1


def tree_to_dict(tree: DecisionTreeClassifier) -> Dict:
    if tree.classes_ is None:
        raise ValueError("cannot serialize an unfitted tree")
    return {
        "kind": "decision_tree",
        "classes": tree.classes_.tolist(),
        "n_features": tree.n_features_,
        "params": {
            "max_depth": tree.max_depth,
            "min_samples_split": tree.min_samples_split,
            "min_samples_leaf": tree.min_samples_leaf,
            "max_features": tree.max_features,
            "random_state": tree.random_state,
        },
        "nodes": [
            {
                "feature": node.feature,
                "threshold": node.threshold,
                "left": node.left,
                "right": node.right,
                "counts": node.counts.tolist(),
            }
            for node in tree._nodes
        ],
    }


def tree_from_dict(data: Dict) -> DecisionTreeClassifier:
    if data.get("kind") != "decision_tree":
        raise ValueError(f"not a decision tree payload: {data.get('kind')!r}")
    tree = DecisionTreeClassifier(**data["params"])
    tree.classes_ = np.array(data["classes"])
    tree.n_features_ = int(data["n_features"])
    tree._n_classes = len(tree.classes_)
    tree._nodes = [
        _Node(
            feature=int(node["feature"]),
            threshold=float(node["threshold"]),
            left=int(node["left"]),
            right=int(node["right"]),
            counts=np.array(node["counts"], dtype=np.float64),
        )
        for node in data["nodes"]
    ]
    tree._pack()
    return tree


def forest_to_dict(forest: RandomForestClassifier) -> Dict:
    if forest.classes_ is None:
        raise ValueError("cannot serialize an unfitted forest")
    return {
        "format": FORMAT_VERSION,
        "kind": "random_forest",
        "classes": forest.classes_.tolist(),
        "params": {
            "n_estimators": forest.n_estimators,
            "max_depth": forest.max_depth,
            "min_samples_leaf": forest.min_samples_leaf,
            "max_features": forest.max_features,
            "bootstrap": forest.bootstrap,
            "max_samples": forest.max_samples,
            "random_state": forest.random_state,
        },
        "estimators": [tree_to_dict(t) for t in forest.estimators_],
    }


def forest_from_dict(data: Dict) -> RandomForestClassifier:
    if data.get("kind") != "random_forest":
        raise ValueError(f"not a random forest payload: {data.get('kind')!r}")
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported format {data.get('format')!r}")
    forest = RandomForestClassifier(**data["params"])
    forest.classes_ = np.array(data["classes"])
    forest.estimators_ = [tree_from_dict(t) for t in data["estimators"]]
    return forest


def save_classifier(
    forest: RandomForestClassifier, path: Union[str, Path]
) -> Path:
    """Write a fitted forest to JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(forest_to_dict(forest)))
    return path


def load_classifier(path: Union[str, Path]) -> RandomForestClassifier:
    """Read a forest written by :func:`save_classifier`."""
    return forest_from_dict(json.loads(Path(path).read_text()))
