"""Serialization of trained classifiers.

The hybrid flow trains one Random Forest per (inputs, transistors) group;
persisting them means a CA-generation service can answer inference
requests without retraining from the CA model library every start.

The JSON format is self-describing and covers the estimators the flow
uses (:class:`DecisionTreeClassifier`, :class:`RandomForestClassifier`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.learning.engine import PackedForest
from repro.learning.forest import RandomForestClassifier
from repro.learning.tree import DecisionTreeClassifier, _Node

FORMAT_VERSION = 1


def tree_to_dict(tree: DecisionTreeClassifier) -> Dict:
    if tree.classes_ is None:
        raise ValueError("cannot serialize an unfitted tree")
    return {
        "kind": "decision_tree",
        "classes": tree.classes_.tolist(),
        "n_features": tree.n_features_,
        "params": {
            "max_depth": tree.max_depth,
            "min_samples_split": tree.min_samples_split,
            "min_samples_leaf": tree.min_samples_leaf,
            "max_features": tree.max_features,
            "random_state": tree.random_state,
        },
        "nodes": [
            {
                "feature": node.feature,
                "threshold": node.threshold,
                "left": node.left,
                "right": node.right,
                "counts": node.counts.tolist(),
            }
            for node in tree._nodes
        ],
    }


def tree_from_dict(data: Dict) -> DecisionTreeClassifier:
    if data.get("kind") != "decision_tree":
        raise ValueError(f"not a decision tree payload: {data.get('kind')!r}")
    tree = DecisionTreeClassifier(**data["params"])
    tree.classes_ = np.array(data["classes"])
    tree.n_features_ = int(data["n_features"])
    tree._n_classes = len(tree.classes_)
    tree._nodes = [
        _Node(
            feature=int(node["feature"]),
            threshold=float(node["threshold"]),
            left=int(node["left"]),
            right=int(node["right"]),
            counts=np.array(node["counts"], dtype=np.float64),
        )
        for node in data["nodes"]
    ]
    tree._pack()
    return tree


def forest_to_dict(forest: RandomForestClassifier) -> Dict:
    if forest.classes_ is None:
        raise ValueError("cannot serialize an unfitted forest")
    return {
        "format": FORMAT_VERSION,
        "kind": "random_forest",
        "classes": forest.classes_.tolist(),
        "params": {
            "n_estimators": forest.n_estimators,
            "max_depth": forest.max_depth,
            "min_samples_leaf": forest.min_samples_leaf,
            "max_features": forest.max_features,
            "bootstrap": forest.bootstrap,
            "max_samples": forest.max_samples,
            "random_state": forest.random_state,
        },
        "estimators": [tree_to_dict(t) for t in forest.estimators_],
    }


def forest_from_dict(data: Dict) -> RandomForestClassifier:
    if data.get("kind") != "random_forest":
        raise ValueError(f"not a random forest payload: {data.get('kind')!r}")
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported format {data.get('format')!r}")
    forest = RandomForestClassifier(**data["params"])
    forest.classes_ = np.array(data["classes"])
    forest.estimators_ = [tree_from_dict(t) for t in data["estimators"]]
    return forest


def packed_forest_to_dict(packed: PackedForest) -> Dict:
    """Serialize a :class:`PackedForest` (the fused inference table)."""
    return {
        "format": FORMAT_VERSION,
        "kind": "packed_forest",
        "classes": packed.classes_.tolist(),
        "n_estimators": packed.n_estimators,
        "offsets": packed.offsets.tolist(),
        "feature": packed.feature.tolist(),
        "threshold": packed.threshold.tolist(),
        "left": packed.left.tolist(),
        "right": packed.right.tolist(),
        "leaf_proba": packed.leaf_proba.tolist(),
        "leaf_vote": packed.leaf_vote.tolist(),
    }


def packed_forest_from_dict(data: Dict) -> PackedForest:
    if data.get("kind") != "packed_forest":
        raise ValueError(f"not a packed forest payload: {data.get('kind')!r}")
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported format {data.get('format')!r}")
    return PackedForest(
        classes_=np.array(data["classes"]),
        n_estimators=int(data["n_estimators"]),
        offsets=np.array(data["offsets"], dtype=np.int64),
        feature=np.array(data["feature"], dtype=np.int64),
        threshold=np.array(data["threshold"], dtype=np.float64),
        left=np.array(data["left"], dtype=np.int64),
        right=np.array(data["right"], dtype=np.int64),
        leaf_proba=np.array(data["leaf_proba"], dtype=np.float64).reshape(
            len(data["feature"]), len(data["classes"])
        ),
        leaf_vote=np.array(data["leaf_vote"], dtype=np.int64),
    )


def save_packed_forest(
    packed: PackedForest, path: Union[str, Path]
) -> Path:
    """Write a packed forest to JSON (inference without retraining)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(packed_forest_to_dict(packed)))
    return path


def load_packed_forest(path: Union[str, Path]) -> PackedForest:
    """Read a packed forest written by :func:`save_packed_forest`."""
    return packed_forest_from_dict(json.loads(Path(path).read_text()))


def save_classifier(
    forest: RandomForestClassifier, path: Union[str, Path]
) -> Path:
    """Write a fitted forest to JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(forest_to_dict(forest)))
    return path


def load_classifier(path: Union[str, Path]) -> RandomForestClassifier:
    """Read a forest written by :func:`save_classifier`."""
    return forest_from_dict(json.loads(Path(path).read_text()))
