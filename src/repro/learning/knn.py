"""k-nearest-neighbours classifier (one of the paper's compared baselines)."""

from __future__ import annotations

from typing import Optional

import numpy as np


class KNeighborsClassifier:
    """Brute-force k-NN with Hamming or Euclidean distance.

    Hamming distance is the natural metric for the CA-matrix's categorical
    integer codes and is the default.
    """

    def __init__(
        self, n_neighbors: int = 5, metric: str = "hamming", chunk_size: int = 256
    ) -> None:
        if metric not in ("hamming", "euclidean"):
            raise ValueError(f"unsupported metric {metric!r}")
        self.n_neighbors = n_neighbors
        self.metric = metric
        self.chunk_size = chunk_size
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        X = np.asarray(X)
        y = np.asarray(y)
        if len(X) != len(y):
            raise ValueError("X and y are misaligned")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._X = X.astype(np.int16 if self.metric == "hamming" else np.float64)
        self.classes_, self._y = np.unique(y, return_inverse=True)
        return self

    def _distances(self, chunk: np.ndarray) -> np.ndarray:
        assert self._X is not None
        if self.metric == "hamming":
            return (chunk[:, None, :] != self._X[None, :, :]).sum(axis=2)
        diff = chunk[:, None, :].astype(np.float64) - self._X[None, :, :]
        return np.einsum("ijk,ijk->ij", diff, diff)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(X).astype(self._X.dtype)
        k = min(self.n_neighbors, len(self._X))
        out = np.zeros((len(X), len(self.classes_)))
        for start in range(0, len(X), self.chunk_size):
            chunk = X[start : start + self.chunk_size]
            distances = self._distances(chunk)
            neighbors = np.argpartition(distances, k - 1, axis=1)[:, :k]
            votes = self._y[neighbors]
            for j in range(len(self.classes_)):
                out[start : start + len(chunk), j] = (votes == j).mean(axis=1)
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
