"""Four-valued logic algebra and Boolean expressions."""

from repro.logic.fourval import (
    CODE_V4,
    V4,
    V4_CODE,
    final_phase,
    initial_phase,
    is_static_word,
    parse_word,
    word_from_phases,
    word_to_string,
)
from repro.logic.expr import (
    And,
    Const,
    Expr,
    ExprSyntaxError,
    Not,
    Or,
    Var,
    Xor,
    assignments,
    parse_expr,
    truth_table,
)

__all__ = [
    "V4",
    "V4_CODE",
    "CODE_V4",
    "parse_word",
    "word_to_string",
    "is_static_word",
    "initial_phase",
    "final_phase",
    "word_from_phases",
    "Expr",
    "Var",
    "Const",
    "Not",
    "And",
    "Or",
    "Xor",
    "parse_expr",
    "truth_table",
    "assignments",
    "ExprSyntaxError",
]
