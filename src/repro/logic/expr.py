"""Boolean expression AST used to specify cell logic functions.

Cell functions in :mod:`repro.library` are written as small Boolean
expressions over input pin names, e.g. the NAND2 function is
``Not(And(Var("A"), Var("B")))``.  The AST supports evaluation on binary
assignments, a tiny parser for a conventional syntax
(``!``, ``&``, ``|``, ``^``, parentheses) and structural utilities used by
the cell synthesizer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, Mapping, Sequence, Tuple


class Expr:
    """Base class for Boolean expression nodes."""

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under a binary assignment of variables."""
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:
        """The set of variable names appearing in the expression."""
        raise NotImplementedError

    # Operator sugar -----------------------------------------------------
    def __and__(self, other: "Expr") -> "Expr":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return Or(self, other)

    def __xor__(self, other: "Expr") -> "Expr":
        return Xor(self, other)

    def __invert__(self) -> "Expr":
        return Not(self)


@dataclass(frozen=True)
class Var(Expr):
    """A variable (cell input pin)."""

    name: str

    def evaluate(self, env: Mapping[str, int]) -> int:
        return int(env[self.name])

    def variables(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    """A Boolean constant."""

    value: int

    def evaluate(self, env: Mapping[str, int]) -> int:
        return int(self.value)

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return str(int(self.value))


@dataclass(frozen=True)
class Not(Expr):
    """Logical complement."""

    operand: Expr

    def evaluate(self, env: Mapping[str, int]) -> int:
        return 1 - self.operand.evaluate(env)

    def variables(self) -> FrozenSet[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"!{_wrap(self.operand)}"


class _NaryOp(Expr):
    """Common machinery for variadic AND / OR / XOR nodes."""

    symbol = "?"

    def __init__(self, *operands: Expr) -> None:
        if len(operands) < 2:
            raise ValueError(f"{type(self).__name__} needs at least two operands")
        self.operands: Tuple[Expr, ...] = tuple(operands)

    def variables(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for op in self.operands:
            out = out | op.variables()
        return out

    def __str__(self) -> str:
        return f" {self.symbol} ".join(_wrap(op) for op in self.operands)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.operands == other.operands  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.operands))


class And(_NaryOp):
    """Logical conjunction of two or more operands."""

    symbol = "&"

    def evaluate(self, env: Mapping[str, int]) -> int:
        for op in self.operands:
            if not op.evaluate(env):
                return 0
        return 1


class Or(_NaryOp):
    """Logical disjunction of two or more operands."""

    symbol = "|"

    def evaluate(self, env: Mapping[str, int]) -> int:
        for op in self.operands:
            if op.evaluate(env):
                return 1
        return 0


class Xor(_NaryOp):
    """Logical exclusive-or of two or more operands."""

    symbol = "^"

    def evaluate(self, env: Mapping[str, int]) -> int:
        acc = 0
        for op in self.operands:
            acc ^= op.evaluate(env)
        return acc


def _wrap(expr: Expr) -> str:
    if isinstance(expr, (Var, Const, Not)):
        return str(expr)
    return f"({expr})"


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

class ExprSyntaxError(ValueError):
    """Raised when :func:`parse_expr` cannot parse its input."""


def parse_expr(text: str) -> Expr:
    """Parse a Boolean expression.

    Grammar (loosest binding first)::

        or    := xor ('|' xor)*
        xor   := and ('^' and)*
        and   := unary ('&' unary)*
        unary := '!' unary | '(' or ')' | name | '0' | '1'
    """
    tokens = _tokenize(text)
    expr, pos = _parse_or(tokens, 0)
    if pos != len(tokens):
        raise ExprSyntaxError(f"unexpected token {tokens[pos]!r} in {text!r}")
    return expr


def _tokenize(text: str) -> Sequence[str]:
    tokens = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch in "!&|^()":
            tokens.append(ch)
            i += 1
        elif ch.isalnum() or ch == "_":
            j = i
            while j < len(text) and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(text[i:j])
            i = j
        else:
            raise ExprSyntaxError(f"bad character {ch!r} in {text!r}")
    return tokens


def _parse_or(tokens: Sequence[str], pos: int) -> Tuple["Expr", int]:
    lhs, pos = _parse_xor(tokens, pos)
    terms = [lhs]
    while pos < len(tokens) and tokens[pos] == "|":
        rhs, pos = _parse_xor(tokens, pos + 1)
        terms.append(rhs)
    return (terms[0] if len(terms) == 1 else Or(*terms)), pos


def _parse_xor(tokens: Sequence[str], pos: int) -> Tuple["Expr", int]:
    lhs, pos = _parse_and(tokens, pos)
    terms = [lhs]
    while pos < len(tokens) and tokens[pos] == "^":
        rhs, pos = _parse_and(tokens, pos + 1)
        terms.append(rhs)
    return (terms[0] if len(terms) == 1 else Xor(*terms)), pos


def _parse_and(tokens: Sequence[str], pos: int) -> Tuple["Expr", int]:
    lhs, pos = _parse_unary(tokens, pos)
    terms = [lhs]
    while pos < len(tokens) and tokens[pos] == "&":
        rhs, pos = _parse_unary(tokens, pos + 1)
        terms.append(rhs)
    return (terms[0] if len(terms) == 1 else And(*terms)), pos


def _parse_unary(tokens: Sequence[str], pos: int) -> Tuple["Expr", int]:
    if pos >= len(tokens):
        raise ExprSyntaxError("unexpected end of expression")
    tok = tokens[pos]
    if tok == "!":
        inner, pos = _parse_unary(tokens, pos + 1)
        return Not(inner), pos
    if tok == "(":
        inner, pos = _parse_or(tokens, pos + 1)
        if pos >= len(tokens) or tokens[pos] != ")":
            raise ExprSyntaxError("missing closing parenthesis")
        return inner, pos + 1
    if tok in ("0", "1"):
        return Const(int(tok)), pos + 1
    if tok in ("!", "&", "|", "^", ")"):
        raise ExprSyntaxError(f"unexpected token {tok!r}")
    return Var(tok), pos + 1


# ----------------------------------------------------------------------
# Truth-table utilities
# ----------------------------------------------------------------------

def truth_table(expr: Expr, inputs: Sequence[str]) -> Tuple[int, ...]:
    """Evaluate *expr* for all 2^n assignments of *inputs*.

    Bit i of the result tuple corresponds to the assignment whose binary
    encoding is i (inputs[0] is the most-significant bit, mirroring the
    activity-value convention of Section III.C of the paper).
    """
    rows = []
    for bits in itertools.product((0, 1), repeat=len(inputs)):
        env: Dict[str, int] = dict(zip(inputs, bits))
        rows.append(expr.evaluate(env))
    return tuple(rows)


def assignments(inputs: Sequence[str]) -> Iterator[Dict[str, int]]:
    """Iterate all binary assignments in ascending binary order."""
    for bits in itertools.product((0, 1), repeat=len(inputs)):
        yield dict(zip(inputs, bits))
