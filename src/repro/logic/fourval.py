"""Four-valued waveform algebra used throughout the CA-matrix.

The paper (Section II.B) represents every stimulus with the alphabet
``{0, 1, R, F}`` where ``R`` is a rising transition (0 -> 1) and ``F`` a
falling transition (1 -> 0).  A *static* value is ``0`` or ``1``; a
*dynamic* value carries a transition.  Simulation additionally needs an
unknown value ``X`` (floating / contended node), which never appears in a
stimulus but may appear in a response.

A four-valued symbol is best thought of as a pair ``(initial, final)`` of
binary phases:

====== ========= =======
symbol initial   final
====== ========= =======
``0``  0         0
``1``  1         1
``R``  0         1
``F``  1         0
``X``  unknown   unknown
====== ========= =======

This module implements the symbol type (:class:`V4`), phase projection,
recombination and the small amount of algebra the rest of the library needs.
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence, Tuple


class V4(enum.Enum):
    """A four-valued logic symbol (plus the unknown ``X``)."""

    ZERO = "0"
    ONE = "1"
    RISE = "R"
    FALL = "F"
    X = "X"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"V4.{self.name}"

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def is_static(self) -> bool:
        """True for ``0`` and ``1``."""
        return self in (V4.ZERO, V4.ONE)

    @property
    def is_dynamic(self) -> bool:
        """True for ``R`` and ``F``."""
        return self in (V4.RISE, V4.FALL)

    @property
    def is_known(self) -> bool:
        """True for anything but ``X``."""
        return self is not V4.X

    # ------------------------------------------------------------------
    # Phase projection / recombination
    # ------------------------------------------------------------------
    @property
    def initial(self) -> int:
        """Binary value of the first (initialization) phase; -1 for X."""
        return _INITIAL[self]

    @property
    def final(self) -> int:
        """Binary value of the second (settled) phase; -1 for X."""
        return _FINAL[self]

    @staticmethod
    def from_phases(initial: int, final: int) -> "V4":
        """Rebuild a symbol from two binary phases.

        Either phase may be -1 (unknown), in which case the result is ``X``.
        """
        if initial < 0 or final < 0:
            return V4.X
        return _FROM_PHASES[(initial, final)]

    @staticmethod
    def from_string(text: str) -> "V4":
        """Parse a single-character symbol (case-insensitive)."""
        try:
            return _FROM_STR[text.upper()]
        except KeyError:
            raise ValueError(f"not a four-valued symbol: {text!r}") from None

    @property
    def inverted(self) -> "V4":
        """Logical complement (R <-> F, 0 <-> 1, X -> X)."""
        return _INVERT[self]


_INITIAL = {V4.ZERO: 0, V4.ONE: 1, V4.RISE: 0, V4.FALL: 1, V4.X: -1}
_FINAL = {V4.ZERO: 0, V4.ONE: 1, V4.RISE: 1, V4.FALL: 0, V4.X: -1}
_FROM_PHASES = {
    (0, 0): V4.ZERO,
    (1, 1): V4.ONE,
    (0, 1): V4.RISE,
    (1, 0): V4.FALL,
}
_FROM_STR = {v.value: v for v in V4}
_INVERT = {V4.ZERO: V4.ONE, V4.ONE: V4.ZERO, V4.RISE: V4.FALL, V4.FALL: V4.RISE, V4.X: V4.X}

#: Stable integer encoding used by the CA-matrix (Section II.B of the paper).
#: 0/1 encode the static states, 2/3 the transitions, -128 stands for X so a
#: defective response can never collide with a legal feature value.
V4_CODE = {V4.ZERO: 0, V4.ONE: 1, V4.RISE: 2, V4.FALL: 3, V4.X: -128}
CODE_V4 = {code: sym for sym, code in V4_CODE.items()}


def parse_word(text: str) -> Tuple[V4, ...]:
    """Parse a stimulus word such as ``"0RF1"`` into a tuple of symbols."""
    return tuple(V4.from_string(ch) for ch in text)


def word_to_string(word: Iterable[V4]) -> str:
    """Inverse of :func:`parse_word`."""
    return "".join(str(v) for v in word)


def is_static_word(word: Sequence[V4]) -> bool:
    """True when every symbol of the word is static (``0``/``1``)."""
    return all(v.is_static for v in word)


def initial_phase(word: Sequence[V4]) -> Tuple[int, ...]:
    """Project a word onto its initialization phase (tuple of 0/1/-1)."""
    return tuple(v.initial for v in word)


def final_phase(word: Sequence[V4]) -> Tuple[int, ...]:
    """Project a word onto its settled phase (tuple of 0/1/-1)."""
    return tuple(v.final for v in word)


def word_from_phases(initial: Sequence[int], final: Sequence[int]) -> Tuple[V4, ...]:
    """Combine two binary vectors into a four-valued word."""
    if len(initial) != len(final):
        raise ValueError("phase vectors must have equal length")
    return tuple(V4.from_phases(a, b) for a, b in zip(initial, final))
